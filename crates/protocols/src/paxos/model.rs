//! The quorum-transition Paxos model (Figure 2 style).

use mp_model::{
    Envelope, Outcome, ProcessId, ProtocolBuilder, ProtocolSpec, QuorumSpec, TransitionSpec,
};

use super::types::{
    AcceptorState, Ballot, LearnerState, PaxosMessage, PaxosSetting, PaxosState, PaxosVariant,
    ProposerPhase, ProposerState, Value,
};

/// Seed-heuristic priorities implementing the paper's "opposite transaction
/// heuristic": transitions that start a new protocol instance get the
/// highest priority, transitions that terminate one the lowest.
pub(crate) const PRIORITY_START: i32 = 10;
pub(crate) const PRIORITY_MIDDLE: i32 = 5;
pub(crate) const PRIORITY_FINISH: i32 = -10;

/// Builds the quorum-transition model of Paxos for a setting and variant.
pub fn quorum_model(
    setting: PaxosSetting,
    variant: PaxosVariant,
) -> ProtocolSpec<PaxosState, PaxosMessage> {
    let mut builder = declare_processes(setting);
    add_proposer_transitions(&mut builder, setting, true);
    add_acceptor_transitions(&mut builder, setting);
    add_learner_transitions(&mut builder, setting, variant, true);
    builder
        .build()
        .expect("the Paxos quorum model is structurally valid")
}

/// Builds the quorum model with explicitly seeded acceptor states: acceptor
/// `i` starts with `accepted[i]` as its previously-accepted (ballot, value)
/// pair (and a matching promise). This is the deliberately-asymmetric
/// variant used by the symmetry tests: acceptors seeded with *distinct*
/// values are no longer interchangeable, so the validated symmetry group of
/// [`crate::paxos::symmetry_roles`] must degenerate on them.
pub fn quorum_model_with_acceptor_values(
    setting: PaxosSetting,
    variant: PaxosVariant,
    accepted: &[Option<(Ballot, Value)>],
) -> ProtocolSpec<PaxosState, PaxosMessage> {
    assert_eq!(
        accepted.len(),
        setting.acceptors,
        "one accepted-value seed per acceptor"
    );
    let mut builder = declare_processes_with(setting, format!("paxos{setting}+seeded"), |i| {
        AcceptorState {
            promised: accepted[i].map(|(ballot, _)| ballot).unwrap_or(0),
            accepted: accepted[i],
        }
    });
    add_proposer_transitions(&mut builder, setting, true);
    add_acceptor_transitions(&mut builder, setting);
    add_learner_transitions(&mut builder, setting, variant, true);
    builder
        .build()
        .expect("the seeded Paxos quorum model is structurally valid")
}

pub(crate) fn declare_processes(
    setting: PaxosSetting,
) -> ProtocolBuilder<PaxosState, PaxosMessage> {
    declare_processes_with(setting, format!("paxos{setting}"), |_| {
        AcceptorState::default()
    })
}

/// Shared process-declaration loop: proposers and learners start in their
/// default states, acceptor `i` starts in `acceptor_state(i)`. Process
/// names and declaration order are what the symmetry layer's transition
/// alignment depends on, so every model variant must come through here.
fn declare_processes_with(
    setting: PaxosSetting,
    name: String,
    acceptor_state: impl Fn(usize) -> AcceptorState,
) -> ProtocolBuilder<PaxosState, PaxosMessage> {
    let mut builder = ProtocolSpec::builder(name);
    for i in 0..setting.proposers {
        builder = builder.process(
            format!("proposer{i}"),
            PaxosState::Proposer(ProposerState::default()),
        );
    }
    for i in 0..setting.acceptors {
        builder = builder.process(
            format!("acceptor{i}"),
            PaxosState::Acceptor(acceptor_state(i)),
        );
    }
    for i in 0..setting.learners {
        builder = builder.process(
            format!("learner{i}"),
            PaxosState::Learner(LearnerState::default()),
        );
    }
    builder
}

/// Picks the value a proposer must write: the value of the highest-ballot
/// accepted pair among the quorum's replies, or the proposer's own value if
/// no acceptor in the quorum has accepted anything (Figure 2's "select
/// highest READ_REPL message").
pub(crate) fn choose_write_value(
    replies: impl Iterator<Item = Option<(Ballot, Value)>>,
    own_value: Value,
) -> Value {
    replies
        .flatten()
        .max_by_key(|(ballot, _)| *ballot)
        .map(|(_, value)| value)
        .unwrap_or(own_value)
}

pub(crate) fn add_proposer_transitions(
    builder: &mut ProtocolBuilder<PaxosState, PaxosMessage>,
    setting: PaxosSetting,
    quorum: bool,
) {
    let acceptors = setting.acceptor_ids();
    for i in 0..setting.proposers {
        let me = setting.proposer(i);
        let ballot = setting.ballot_of(i);
        let own_value = setting.value_of(i);
        let acceptors_for_start = acceptors.clone();

        // Phase 1a: start the ballot.
        builder.add_transition(
            TransitionSpec::builder(format!("READ_{i}"), me)
                .internal()
                .guard(|local: &PaxosState, _| local.as_proposer().phase == ProposerPhase::Idle)
                .sends(&["READ"])
                .sends_to(acceptors_for_start.clone())
                .priority(PRIORITY_START)
                .effect(move |local: &PaxosState, _| {
                    let mut proposer = local.as_proposer().clone();
                    proposer.phase = ProposerPhase::ReadSent;
                    Outcome::new(PaxosState::Proposer(proposer))
                        .broadcast(acceptors_for_start.clone(), PaxosMessage::Read { ballot })
                })
                .build(),
        );

        if quorum {
            // Phase 1b -> 2a: the quorum transition of Figure 2.
            let acceptors_for_write = acceptors.clone();
            builder.add_transition(
                TransitionSpec::builder(format!("READ_REPL_{i}"), me)
                    .quorum_input("READ_REPL", QuorumSpec::Exact(setting.majority()))
                    .guard(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        local.as_proposer().phase == ProposerPhase::ReadSent
                            && msgs.iter().all(|m| {
                                matches!(m.payload, PaxosMessage::ReadRepl { ballot: b, .. } if b == ballot)
                            })
                    })
                    .sends(&["WRITE"])
                    .sends_to(acceptors_for_write.clone())
                    .priority(PRIORITY_MIDDLE)
                    .effect(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        let mut proposer = local.as_proposer().clone();
                        proposer.phase = ProposerPhase::WriteSent;
                        let value = choose_write_value(
                            msgs.iter().map(|m| match m.payload {
                                PaxosMessage::ReadRepl { accepted, .. } => accepted,
                                _ => None,
                            }),
                            own_value,
                        );
                        Outcome::new(PaxosState::Proposer(proposer)).broadcast(
                            acceptors_for_write.clone(),
                            PaxosMessage::Write { ballot, value },
                        )
                    })
                    .build(),
            );
        } else {
            // Single-message simulation (Figure 3): buffer replies one by one.
            let acceptors_for_write = acceptors.clone();
            let majority = setting.majority();
            builder.add_transition(
                TransitionSpec::builder(format!("READ_REPL_{i}"), me)
                    .single_input("READ_REPL")
                    .guard(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        local.as_proposer().phase == ProposerPhase::ReadSent
                            && matches!(msgs[0].payload, PaxosMessage::ReadRepl { ballot: b, .. } if b == ballot)
                    })
                    .sends(&["WRITE"])
                    .sends_to(acceptors_for_write.clone())
                    .priority(PRIORITY_MIDDLE)
                    .effect(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        let mut proposer = local.as_proposer().clone();
                        let accepted = match msgs[0].payload {
                            PaxosMessage::ReadRepl { accepted, .. } => accepted,
                            _ => None,
                        };
                        proposer.read_replies.insert((msgs[0].sender, accepted));
                        if proposer.read_replies.len() >= majority {
                            let value = choose_write_value(
                                proposer.read_replies.iter().map(|(_, a)| *a),
                                own_value,
                            );
                            proposer.phase = ProposerPhase::WriteSent;
                            proposer.read_replies.clear();
                            Outcome::new(PaxosState::Proposer(proposer)).broadcast(
                                acceptors_for_write.clone(),
                                PaxosMessage::Write { ballot, value },
                            )
                        } else {
                            Outcome::new(PaxosState::Proposer(proposer))
                        }
                    })
                    .build(),
            );
        }
    }
}

pub(crate) fn add_acceptor_transitions(
    builder: &mut ProtocolBuilder<PaxosState, PaxosMessage>,
    setting: PaxosSetting,
) {
    let learners = setting.learner_ids();
    for j in 0..setting.acceptors {
        let me = setting.acceptor(j);

        // Phase 1b: the reply transition of Figure 6.
        builder.add_transition(
            TransitionSpec::builder(format!("READ_ACC_{j}"), me)
                .single_input("READ")
                .reply()
                .sends(&["READ_REPL"])
                .priority(PRIORITY_MIDDLE)
                .effect(|local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                    let mut acceptor = local.as_acceptor().clone();
                    let PaxosMessage::Read { ballot } = msgs[0].payload else {
                        return Outcome::new(local.clone());
                    };
                    if ballot > acceptor.promised {
                        acceptor.promised = ballot;
                        let reply = PaxosMessage::ReadRepl {
                            ballot,
                            accepted: acceptor.accepted,
                        };
                        Outcome::new(PaxosState::Acceptor(acceptor)).send(msgs[0].sender, reply)
                    } else {
                        // Stale ballot: consume the request without replying.
                        Outcome::new(PaxosState::Acceptor(acceptor))
                    }
                })
                .build(),
        );

        // Phase 2a -> 2b.
        let learners_for_accept = learners.clone();
        builder.add_transition(
            TransitionSpec::builder(format!("WRITE_ACC_{j}"), me)
                .single_input("WRITE")
                .sends(&["ACCEPT"])
                .sends_to(learners_for_accept.clone())
                .priority(PRIORITY_MIDDLE)
                .effect(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                    let mut acceptor = local.as_acceptor().clone();
                    let PaxosMessage::Write { ballot, value } = msgs[0].payload else {
                        return Outcome::new(local.clone());
                    };
                    if ballot >= acceptor.promised {
                        acceptor.promised = ballot;
                        acceptor.accepted = Some((ballot, value));
                        Outcome::new(PaxosState::Acceptor(acceptor)).broadcast(
                            learners_for_accept.clone(),
                            PaxosMessage::Accept { ballot, value },
                        )
                    } else {
                        Outcome::new(PaxosState::Acceptor(acceptor))
                    }
                })
                .build(),
        );
    }
}

pub(crate) fn add_learner_transitions(
    builder: &mut ProtocolBuilder<PaxosState, PaxosMessage>,
    setting: PaxosSetting,
    variant: PaxosVariant,
    quorum: bool,
) {
    let majority = setting.majority();
    for k in 0..setting.learners {
        let me = setting.learner(k);
        if quorum {
            builder.add_transition(
                TransitionSpec::builder(format!("ACCEPT_{k}"), me)
                    .quorum_input("ACCEPT", QuorumSpec::Exact(majority))
                    .guard(move |_: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        match variant {
                            // A correct learner compares: all ACCEPTs of the
                            // quorum must carry the same ballot and value.
                            PaxosVariant::Correct => {
                                let mut pairs = msgs.iter().map(|m| match m.payload {
                                    PaxosMessage::Accept { ballot, value } => (ballot, value),
                                    _ => (0, 0),
                                });
                                let first = pairs.next();
                                pairs.all(|p| Some(p) == first)
                            }
                            // The faulty learner does not compare.
                            PaxosVariant::FaultyLearner => true,
                        }
                    })
                    .sends_nothing()
                    .visible()
                    .priority(PRIORITY_FINISH)
                    .effect(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        let mut learner = local.as_learner().clone();
                        for m in msgs {
                            if let PaxosMessage::Accept { value, .. } = m.payload {
                                learner.learned.insert(value);
                            }
                        }
                        Outcome::new(PaxosState::Learner(learner))
                    })
                    .build(),
            );
        } else {
            builder.add_transition(
                TransitionSpec::builder(format!("ACCEPT_{k}"), me)
                    .single_input("ACCEPT")
                    .sends_nothing()
                    .visible()
                    .priority(PRIORITY_FINISH)
                    .effect(move |local: &PaxosState, msgs: &[Envelope<PaxosMessage>]| {
                        let mut learner = local.as_learner().clone();
                        let PaxosMessage::Accept { ballot, value } = msgs[0].payload else {
                            return Outcome::new(local.clone());
                        };
                        learner
                            .accept_buffer
                            .insert((msgs[0].sender, ballot, value));
                        match variant {
                            PaxosVariant::Correct => {
                                // Count distinct senders per (ballot, value).
                                for &(_, b, v) in learner.accept_buffer.iter() {
                                    let senders = learner
                                        .accept_buffer
                                        .iter()
                                        .filter(|(_, b2, v2)| *b2 == b && *v2 == v)
                                        .map(|(s, _, _)| *s)
                                        .collect::<std::collections::BTreeSet<_>>();
                                    if senders.len() >= majority {
                                        learner.learned.insert(v);
                                    }
                                }
                            }
                            PaxosVariant::FaultyLearner => {
                                let senders = learner
                                    .accept_buffer
                                    .iter()
                                    .map(|(s, _, _)| *s)
                                    .collect::<std::collections::BTreeSet<_>>();
                                if senders.len() >= majority {
                                    for &(_, _, v) in learner.accept_buffer.iter() {
                                        learner.learned.insert(v);
                                    }
                                }
                            }
                        }
                        Outcome::new(PaxosState::Learner(learner))
                    })
                    .build(),
            );
        }
    }
}

/// Re-exported helper so sibling modules can reuse process declaration.
pub(crate) fn _unused(_: ProcessId) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_write_value_prefers_highest_ballot() {
        assert_eq!(choose_write_value([None, None].into_iter(), 7), 7);
        assert_eq!(
            choose_write_value(
                [Some((1, 4)), None, Some((3, 9)), Some((2, 5))].into_iter(),
                7
            ),
            9
        );
        assert_eq!(choose_write_value(std::iter::empty(), 3), 3);
    }

    #[test]
    fn quorum_model_has_expected_transition_count() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        // 2 proposers × 2 + 3 acceptors × 2 + 1 learner = 11 transitions.
        assert_eq!(spec.num_transitions(), 11);
        assert_eq!(spec.num_processes(), 6);
        assert!(spec.transition_by_name("READ_REPL_0").is_some());
        assert!(spec.transition_by_name("ACCEPT_0").is_some());
    }

    #[test]
    fn read_repl_is_an_exact_quorum_transition() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let id = spec.transition_by_name("READ_REPL_0").unwrap();
        let t = spec.transition(id);
        assert!(t.is_exact_quorum());
        assert_eq!(t.exact_quorum_size(), Some(2));
    }

    #[test]
    fn acceptor_read_is_a_reply_transition() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let id = spec.transition_by_name("READ_ACC_0").unwrap();
        assert!(spec.transition(id).annotations().is_reply);
    }

    #[test]
    fn learner_transition_is_visible() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let id = spec.transition_by_name("ACCEPT_0").unwrap();
        assert!(spec.transition(id).annotations().is_visible);
    }
}
