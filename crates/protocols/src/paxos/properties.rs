//! Paxos properties: the consensus safety invariant and the liveness
//! properties (termination, leads-to) the fault sweeps ask about.

use std::collections::BTreeSet;

use mp_checker::{Invariant, NullObserver, Property};
use mp_model::GlobalState;

use super::types::{PaxosMessage, PaxosSetting, PaxosState, Value};

/// Returns the set of values learned by any learner in `state`.
pub fn values_learned(
    setting: PaxosSetting,
    state: &GlobalState<PaxosState, PaxosMessage>,
) -> BTreeSet<Value> {
    let mut values = BTreeSet::new();
    for k in 0..setting.learners {
        values.extend(
            state
                .local(setting.learner(k))
                .as_learner()
                .learned
                .iter()
                .copied(),
        );
    }
    values
}

/// The consensus invariant checked in the paper's Paxos experiments:
///
/// * **agreement** — no two learned values differ (across learners and
///   across multiple learning events of the same learner);
/// * **validity** — every learned value was proposed by some proposer.
///
/// Both are state-local predicates over the learner states, so they are
/// checkable as invariants in the sense of Section II-A.
pub fn consensus_property(
    setting: PaxosSetting,
) -> Invariant<PaxosState, PaxosMessage, NullObserver> {
    Invariant::new(
        "consensus",
        move |state: &GlobalState<PaxosState, PaxosMessage>, _| {
            let learned = values_learned(setting, state);
            if learned.len() > 1 {
                return Err(format!(
                    "agreement violated: learners learned {} distinct values {:?}",
                    learned.len(),
                    learned
                ));
            }
            let proposed: BTreeSet<Value> = (0..setting.proposers)
                .map(|i| setting.value_of(i))
                .collect();
            if let Some(bad) = learned.iter().find(|v| !proposed.contains(v)) {
                return Err(format!(
                    "validity violated: learned value {bad} was never proposed"
                ));
            }
            Ok(())
        },
    )
}

/// The **termination** property of the Paxos experiments: every fair
/// maximal execution eventually learns some value ("is consensus actually
/// reached?", not just "is it never violated?"). On the seed model this
/// holds; under a fault budget it distinguishes budgets the protocol can
/// ride out from those that kill liveness — a crashed majority of acceptors
/// yields a fair lasso in which no learner ever learns.
pub fn termination_property(
    setting: PaxosSetting,
) -> Property<PaxosState, PaxosMessage, NullObserver> {
    Property::termination("paxos-termination", move |state, _| {
        !values_learned(setting, state).is_empty()
    })
}

/// The **leads-to** property `accepted ⇝ learned`: whenever some acceptor
/// has accepted a value, some learner eventually learns one (on every fair
/// maximal execution). Sharper than [`termination_property`]: executions on
/// which no acceptor ever accepts are vacuously fine, so a fault that stops
/// the protocol *before* phase 2 does not violate it, while a fault that
/// stops it between acceptance and learning does.
pub fn accepted_leads_to_learned(
    setting: PaxosSetting,
) -> Property<PaxosState, PaxosMessage, NullObserver> {
    Property::leads_to(
        "accepted-leads-to-learned",
        move |state: &GlobalState<PaxosState, PaxosMessage>, _: &NullObserver| {
            (0..setting.acceptors).any(|i| {
                state
                    .local(setting.acceptor(i))
                    .as_acceptor()
                    .accepted
                    .is_some()
            })
        },
        move |state: &GlobalState<PaxosState, PaxosMessage>, _: &NullObserver| {
            !values_learned(setting, state).is_empty()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paxos::{quorum_model, PaxosVariant};
    use mp_checker::PropertyStatus;
    use mp_model::ProcessId;

    fn state_with_learned(
        setting: PaxosSetting,
        learned: &[(usize, Value)],
    ) -> GlobalState<PaxosState, PaxosMessage> {
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let mut state = spec.initial_state();
        for (learner, value) in learned {
            let id: ProcessId = setting.learner(*learner);
            if let PaxosState::Learner(l) = state.local_mut(id) {
                l.learned.insert(*value);
            }
        }
        state
    }

    #[test]
    fn initial_state_satisfies_consensus() {
        let setting = PaxosSetting::new(2, 3, 2);
        let prop = consensus_property(setting);
        let state = state_with_learned(setting, &[]);
        assert!(prop.evaluate(&state, &NullObserver).holds());
    }

    #[test]
    fn single_learned_value_is_fine() {
        let setting = PaxosSetting::new(2, 3, 2);
        let prop = consensus_property(setting);
        let state = state_with_learned(setting, &[(0, 1), (1, 1)]);
        assert!(prop.evaluate(&state, &NullObserver).holds());
        assert_eq!(values_learned(setting, &state).len(), 1);
    }

    #[test]
    fn disagreement_between_learners_is_caught() {
        let setting = PaxosSetting::new(2, 3, 2);
        let prop = consensus_property(setting);
        let state = state_with_learned(setting, &[(0, 1), (1, 2)]);
        match prop.evaluate(&state, &NullObserver) {
            PropertyStatus::Violated(reason) => assert!(reason.contains("agreement")),
            PropertyStatus::Holds => panic!("expected a violation"),
        }
    }

    #[test]
    fn seed_paxos_terminates_and_leads_to_learning() {
        use mp_checker::Checker;
        let setting = PaxosSetting::new(1, 2, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let report = Checker::new(&spec, termination_property(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
        let report = Checker::new(&spec, accepted_leads_to_learned(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn unproposed_value_is_caught() {
        let setting = PaxosSetting::new(1, 3, 1);
        let prop = consensus_property(setting);
        let state = state_with_learned(setting, &[(0, 9)]);
        match prop.evaluate(&state, &NullObserver) {
            PropertyStatus::Violated(reason) => assert!(reason.contains("validity")),
            PropertyStatus::Holds => panic!("expected a violation"),
        }
    }
}
