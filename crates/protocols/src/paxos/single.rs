//! The single-message Paxos model (Figure 3 style).
//!
//! Every quorum transition of the quorum model is simulated by a
//! single-message transition that buffers incoming messages in the local
//! state and fires the original effect once the buffer holds a majority.
//! This is exactly the modelling style the paper argues against in
//! Section II-C: the intermediate buffering states are protocol-irrelevant
//! but still enlarge the state space.

use mp_model::ProtocolSpec;

use super::model::{
    add_acceptor_transitions, add_learner_transitions, add_proposer_transitions, declare_processes,
};
use super::types::{PaxosMessage, PaxosSetting, PaxosState, PaxosVariant};

/// Builds the single-message-transition model of Paxos for a setting and
/// variant.
pub fn single_message_model(
    setting: PaxosSetting,
    variant: PaxosVariant,
) -> ProtocolSpec<PaxosState, PaxosMessage> {
    let mut builder = declare_processes(setting);
    add_proposer_transitions(&mut builder, setting, false);
    add_acceptor_transitions(&mut builder, setting);
    add_learner_transitions(&mut builder, setting, variant, false);
    builder
        .build()
        .expect("the Paxos single-message model is structurally valid")
        .renamed(format!("paxos{setting}-single"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::StateGraph;

    #[test]
    fn single_message_model_has_no_quorum_transitions() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = single_message_model(setting, PaxosVariant::Correct);
        assert_eq!(spec.num_transitions(), 11);
        for (_, t) in spec.transitions() {
            assert!(
                !t.is_quorum(),
                "transition `{}` must not be a quorum transition",
                t.name()
            );
        }
    }

    #[test]
    fn single_message_state_space_is_larger_than_quorum_state_space() {
        // Section II-C's claim, measured on the smallest meaningful instance.
        let setting = PaxosSetting::new(1, 3, 1);
        let quorum = super::super::quorum_model(setting, PaxosVariant::Correct);
        let single = single_message_model(setting, PaxosVariant::Correct);
        let gq = StateGraph::build(&quorum, 1_000_000).unwrap();
        let gs = StateGraph::build(&single, 1_000_000).unwrap();
        assert!(
            gs.num_states() > gq.num_states(),
            "single-message model has {} states, quorum model has {}",
            gs.num_states(),
            gq.num_states()
        );
    }

    #[test]
    fn name_distinguishes_the_models() {
        let setting = PaxosSetting::new(1, 1, 1);
        let spec = single_message_model(setting, PaxosVariant::Correct);
        assert!(spec.name().contains("single"));
    }
}
