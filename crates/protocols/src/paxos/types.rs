//! Settings, messages and local states of the Paxos model.

use std::collections::BTreeSet;
use std::fmt;

use mp_model::{Kind, Message, Permutable, Permutation, ProcessId};

/// Ballot numbers; proposer `i` always uses ballot `i + 1`, so one ballot per
/// proposer keeps the model finite (the standard protocol-level abstraction
/// for single-decree Paxos).
pub type Ballot = u8;

/// Proposed values; proposer `i` proposes value `i + 1`.
pub type Value = u8;

/// A Paxos protocol setting `(P, A, L)`: the number of proposers, acceptors
/// and learners (paper, Section V-A "Protocol settings").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PaxosSetting {
    /// Number of proposer processes.
    pub proposers: usize,
    /// Number of acceptor processes.
    pub acceptors: usize,
    /// Number of learner processes.
    pub learners: usize,
}

impl PaxosSetting {
    /// Creates a setting; e.g. `PaxosSetting::new(2, 3, 1)` is the paper's
    /// Paxos (2,3,1).
    ///
    /// # Panics
    ///
    /// Panics if any count is zero: a meaningful instance needs at least one
    /// process of each type.
    pub fn new(proposers: usize, acceptors: usize, learners: usize) -> Self {
        assert!(
            proposers > 0 && acceptors > 0 && learners > 0,
            "a Paxos setting needs at least one process of each type"
        );
        PaxosSetting {
            proposers,
            acceptors,
            learners,
        }
    }

    /// Total number of processes.
    pub fn num_processes(&self) -> usize {
        self.proposers + self.acceptors + self.learners
    }

    /// A majority of the acceptors (the quorum size of both the `READ_REPL`
    /// and the learner `ACCEPT` transitions).
    pub fn majority(&self) -> usize {
        self.acceptors / 2 + 1
    }

    /// Process id of proposer `i`.
    pub fn proposer(&self, i: usize) -> ProcessId {
        assert!(i < self.proposers);
        ProcessId(i)
    }

    /// Process id of acceptor `i`.
    pub fn acceptor(&self, i: usize) -> ProcessId {
        assert!(i < self.acceptors);
        ProcessId(self.proposers + i)
    }

    /// Process id of learner `i`.
    pub fn learner(&self, i: usize) -> ProcessId {
        assert!(i < self.learners);
        ProcessId(self.proposers + self.acceptors + i)
    }

    /// All proposer ids.
    pub fn proposer_ids(&self) -> Vec<ProcessId> {
        (0..self.proposers).map(|i| self.proposer(i)).collect()
    }

    /// All acceptor ids.
    pub fn acceptor_ids(&self) -> Vec<ProcessId> {
        (0..self.acceptors).map(|i| self.acceptor(i)).collect()
    }

    /// All learner ids.
    pub fn learner_ids(&self) -> Vec<ProcessId> {
        (0..self.learners).map(|i| self.learner(i)).collect()
    }

    /// The ballot used by proposer `i`.
    pub fn ballot_of(&self, i: usize) -> Ballot {
        (i + 1) as Ballot
    }

    /// The value proposed by proposer `i`.
    pub fn value_of(&self, i: usize) -> Value {
        (i + 1) as Value
    }
}

impl fmt::Display for PaxosSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{})",
            self.proposers, self.acceptors, self.learners
        )
    }
}

/// Whether the learners follow the protocol or contain the injected bug.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PaxosVariant {
    /// Learners require a majority of `ACCEPT` messages with the *same*
    /// ballot and value before learning.
    #[default]
    Correct,
    /// "Faulty Paxos": learners do not compare the values received from the
    /// acceptors — any majority of `ACCEPT` messages makes them learn every
    /// value in the quorum (paper, Section V-A "Fault injection").
    FaultyLearner,
}

/// Paxos messages (phases 1a/1b/2a/2b, named as in the paper).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PaxosMessage {
    /// Phase 1a: a proposer asks the acceptors what they have accepted.
    Read {
        /// The proposer's ballot.
        ballot: Ballot,
    },
    /// Phase 1b: an acceptor's promise, carrying its previously accepted
    /// (ballot, value) pair if any.
    ReadRepl {
        /// The ballot being answered.
        ballot: Ballot,
        /// The highest (ballot, value) pair the acceptor accepted so far.
        accepted: Option<(Ballot, Value)>,
    },
    /// Phase 2a: the proposer asks the acceptors to accept a value.
    Write {
        /// The proposer's ballot.
        ballot: Ballot,
        /// The value to accept.
        value: Value,
    },
    /// Phase 2b: an acceptor tells the learners it accepted a value.
    Accept {
        /// The ballot under which the value was accepted.
        ballot: Ballot,
        /// The accepted value.
        value: Value,
    },
}

mp_model::codec!(enum PaxosMessage {
    0 = Read { ballot },
    1 = ReadRepl { ballot, accepted },
    2 = Write { ballot, value },
    3 = Accept { ballot, value },
});

impl Message for PaxosMessage {
    fn kind(&self) -> Kind {
        match self {
            PaxosMessage::Read { .. } => "READ",
            PaxosMessage::ReadRepl { .. } => "READ_REPL",
            PaxosMessage::Write { .. } => "WRITE",
            PaxosMessage::Accept { .. } => "ACCEPT",
        }
    }
}

// Paxos messages carry ballots and values but no process ids (sender
// identity lives in the envelope, which the symmetry layer maps itself).
impl Permutable for PaxosMessage {
    fn permute(&self, _perm: &Permutation) -> Self {
        self.clone()
    }
}

/// Proposer phases.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum ProposerPhase {
    /// The proposer has not started its ballot yet.
    #[default]
    Idle,
    /// `READ` was broadcast; waiting for a majority of `READ_REPL`.
    ReadSent,
    /// `WRITE` was broadcast; the proposer is done.
    WriteSent,
}

/// Local state of a proposer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProposerState {
    /// Current phase.
    pub phase: ProposerPhase,
    /// Replies buffered by the single-message model (sender index, reply
    /// payload); unused by the quorum model.
    pub read_replies: BTreeSet<(ProcessId, Option<(Ballot, Value)>)>,
}

/// Local state of an acceptor.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AcceptorState {
    /// Highest ballot promised (0 = none).
    pub promised: Ballot,
    /// Highest (ballot, value) accepted so far.
    pub accepted: Option<(Ballot, Value)>,
}

/// Local state of a learner.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LearnerState {
    /// Every value this learner has learned (a correct learner's set never
    /// holds more than one distinct value).
    pub learned: BTreeSet<Value>,
    /// `ACCEPT` messages buffered by the single-message model
    /// (sender, ballot, value); unused by the quorum model.
    pub accept_buffer: BTreeSet<(ProcessId, Ballot, Value)>,
}

mp_model::codec!(enum ProposerPhase { 0 = Idle, 1 = ReadSent, 2 = WriteSent });
mp_model::codec!(struct ProposerState { phase, read_replies });
mp_model::codec!(struct AcceptorState { promised, accepted });
mp_model::codec!(struct LearnerState { learned, accept_buffer });

/// Local state of any Paxos process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PaxosState {
    /// A proposer.
    Proposer(ProposerState),
    /// An acceptor.
    Acceptor(AcceptorState),
    /// A learner.
    Learner(LearnerState),
}

mp_model::codec!(enum PaxosState {
    0 = Proposer(state),
    1 = Acceptor(state),
    2 = Learner(state),
});

// Local states permute the process ids buffered by the single-message
// models (read replies and accept buffers record senders); everything else
// is plain data.
impl Permutable for PaxosState {
    fn permute(&self, perm: &Permutation) -> Self {
        match self {
            PaxosState::Proposer(p) => PaxosState::Proposer(ProposerState {
                phase: p.phase,
                read_replies: p.read_replies.permute(perm),
            }),
            PaxosState::Acceptor(a) => PaxosState::Acceptor(a.clone()),
            PaxosState::Learner(l) => PaxosState::Learner(LearnerState {
                learned: l.learned.clone(),
                accept_buffer: l.accept_buffer.permute(perm),
            }),
        }
    }
}

impl PaxosState {
    /// Returns the proposer state.
    ///
    /// # Panics
    ///
    /// Panics if this is not a proposer.
    pub fn as_proposer(&self) -> &ProposerState {
        match self {
            PaxosState::Proposer(p) => p,
            other => panic!("expected a proposer state, found {other:?}"),
        }
    }

    /// Returns the acceptor state.
    ///
    /// # Panics
    ///
    /// Panics if this is not an acceptor.
    pub fn as_acceptor(&self) -> &AcceptorState {
        match self {
            PaxosState::Acceptor(a) => a,
            other => panic!("expected an acceptor state, found {other:?}"),
        }
    }

    /// Returns the learner state.
    ///
    /// # Panics
    ///
    /// Panics if this is not a learner.
    pub fn as_learner(&self) -> &LearnerState {
        match self {
            PaxosState::Learner(l) => l,
            other => panic!("expected a learner state, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setting_layout_is_contiguous() {
        let s = PaxosSetting::new(2, 3, 1);
        assert_eq!(s.num_processes(), 6);
        assert_eq!(s.proposer(0), ProcessId(0));
        assert_eq!(s.proposer(1), ProcessId(1));
        assert_eq!(s.acceptor(0), ProcessId(2));
        assert_eq!(s.acceptor(2), ProcessId(4));
        assert_eq!(s.learner(0), ProcessId(5));
        assert_eq!(s.majority(), 2);
        assert_eq!(s.to_string(), "(2,3,1)");
    }

    #[test]
    fn ballots_and_values_are_per_proposer() {
        let s = PaxosSetting::new(2, 3, 1);
        assert_eq!(s.ballot_of(0), 1);
        assert_eq!(s.ballot_of(1), 2);
        assert_eq!(s.value_of(1), 2);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_acceptors_is_rejected() {
        PaxosSetting::new(1, 0, 1);
    }

    #[test]
    fn message_kinds_match_paper_names() {
        assert_eq!(PaxosMessage::Read { ballot: 1 }.kind(), "READ");
        assert_eq!(
            PaxosMessage::ReadRepl {
                ballot: 1,
                accepted: None
            }
            .kind(),
            "READ_REPL"
        );
        assert_eq!(
            PaxosMessage::Write {
                ballot: 1,
                value: 1
            }
            .kind(),
            "WRITE"
        );
        assert_eq!(
            PaxosMessage::Accept {
                ballot: 1,
                value: 1
            }
            .kind(),
            "ACCEPT"
        );
    }

    #[test]
    fn state_accessors_panic_on_wrong_role() {
        let p = PaxosState::Proposer(ProposerState::default());
        assert_eq!(p.as_proposer().phase, ProposerPhase::Idle);
        let result = std::panic::catch_unwind(|| p.as_acceptor().promised);
        assert!(result.is_err());
    }
}
