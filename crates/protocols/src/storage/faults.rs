//! Budgeted fault injection for the regular-storage models.
//!
//! The register is designed for crash faults of a minority of base
//! objects; the generic fault layer lets the checker confirm that design
//! point (regularity holds with one crashed base object) and explore
//! beyond it. The regularity property reads a history observer, so this
//! module also wires up the lifted observer.

use mp_checker::Invariant;
use mp_faults::{inject, lift_observed_invariant, FaultBudget, FaultLocal, LiftedObserver};
use mp_model::ProtocolSpec;

use super::model::quorum_model;
use super::properties::{regularity_property, RegularityObserver};
use super::types::{StorageMessage, StorageSetting, StorageState};

/// The quorum-transition regular-storage model wrapped with a fault budget.
pub fn faulty_quorum_model(
    setting: StorageSetting,
    budget: FaultBudget,
) -> ProtocolSpec<FaultLocal<StorageState>, StorageMessage> {
    inject(&quorum_model(setting), budget)
        .expect("a valid storage model stays valid under fault injection")
}

/// The regularity history observer lifted to the fault-augmented model.
pub fn faulty_regularity_observer(
    setting: StorageSetting,
) -> LiftedObserver<StorageState, StorageMessage, RegularityObserver> {
    LiftedObserver::new(quorum_model(setting), RegularityObserver::new(setting))
}

/// The regularity property lifted to the fault-augmented state space.
pub fn faulty_regularity_property(
    setting: StorageSetting,
) -> Invariant<
    FaultLocal<StorageState>,
    StorageMessage,
    LiftedObserver<StorageState, StorageMessage, RegularityObserver>,
> {
    lift_observed_invariant(regularity_property(setting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::Checker;

    #[test]
    fn regularity_survives_one_base_object_crash() {
        let setting = StorageSetting::new(2, 1);
        let spec = faulty_quorum_model(setting, FaultBudget::none().crashes(1));
        let report = Checker::with_observer(
            &spec,
            faulty_regularity_property(setting),
            faulty_regularity_observer(setting),
        )
        .spor()
        .run();
        assert!(report.verdict.is_verified(), "{report}");
    }
}
