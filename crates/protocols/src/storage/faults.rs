//! Budgeted fault injection for the regular-storage models.
//!
//! The register is designed for crash faults of a minority of base
//! objects; the generic fault layer lets the checker confirm that design
//! point (regularity holds with one crashed base object) and explore
//! beyond it. The regularity property reads a history observer, so this
//! module also wires up the lifted observer.

use mp_checker::{Invariant, NullObserver, Property};
use mp_faults::{
    inject, lift_observed_invariant, lift_property, FaultBudget, FaultLocal, LiftedObserver,
};
use mp_model::ProtocolSpec;

use super::model::quorum_model;
use super::properties::{
    read_completion_property, reading_leads_to_done, regularity_property, RegularityObserver,
};
use super::types::{StorageMessage, StorageSetting, StorageState};

/// The quorum-transition regular-storage model wrapped with a fault budget.
pub fn faulty_quorum_model(
    setting: StorageSetting,
    budget: FaultBudget,
) -> ProtocolSpec<FaultLocal<StorageState>, StorageMessage> {
    inject(&quorum_model(setting), budget)
        .expect("a valid storage model stays valid under fault injection")
}

/// The regularity history observer lifted to the fault-augmented model.
pub fn faulty_regularity_observer(
    setting: StorageSetting,
) -> LiftedObserver<StorageState, StorageMessage, RegularityObserver> {
    LiftedObserver::new(quorum_model(setting), RegularityObserver::new(setting))
}

/// The regularity property lifted to the fault-augmented state space.
pub fn faulty_regularity_property(
    setting: StorageSetting,
) -> Invariant<
    FaultLocal<StorageState>,
    StorageMessage,
    LiftedObserver<StorageState, StorageMessage, RegularityObserver>,
> {
    lift_observed_invariant(regularity_property(setting))
}

/// The read-completion termination property lifted to the fault-augmented
/// state space: can a read still finish under the budget? A crashed
/// majority of base objects leaves the reader pending forever.
pub fn faulty_read_completion_property(
    setting: StorageSetting,
) -> Property<FaultLocal<StorageState>, StorageMessage, NullObserver> {
    lift_property(read_completion_property(setting))
}

/// The `reading ⇝ done` leads-to property lifted to the fault-augmented
/// state space.
pub fn faulty_reading_leads_to_done(
    setting: StorageSetting,
) -> Property<FaultLocal<StorageState>, StorageMessage, NullObserver> {
    lift_property(reading_leads_to_done(setting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::Checker;

    #[test]
    fn regularity_survives_one_base_object_crash() {
        let setting = StorageSetting::new(2, 1);
        let spec = faulty_quorum_model(setting, FaultBudget::none().crashes(1));
        let report = Checker::with_observer(
            &spec,
            faulty_regularity_property(setting),
            faulty_regularity_observer(setting),
        )
        .spor()
        .run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn read_completion_breaks_under_loss_but_not_zero_budget() {
        let setting = StorageSetting::new(2, 1);
        let zero = faulty_quorum_model(setting, FaultBudget::none());
        let report = Checker::new(&zero, faulty_read_completion_property(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");

        // Dropping a single message can starve the majority quorum the read
        // (or the write before it) is waiting for: the execution quiesces
        // with the read pending.
        let lossy = faulty_quorum_model(setting, FaultBudget::none().drops(1));
        let report = Checker::new(&lossy, faulty_read_completion_property(setting)).run();
        let cx = report
            .verdict
            .counterexample()
            .expect("a lost reply blocks the read");
        assert!(cx.is_lasso, "{cx}");
    }
}
