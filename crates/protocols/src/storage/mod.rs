//! Regular storage — an ABD-style single-writer, multi-reader register
//! (paper, Section V-A, protocol (c); Attiya–Bar-Noy–Dolev).
//!
//! The writer stores a timestamped value at every base object and considers
//! the write complete when a majority acknowledges; a reader queries every
//! base object and returns the value with the highest timestamp among a
//! majority of responses. *Regularity* guarantees that a read returns a
//! value "not older than the one written by the latest preceding write
//! operation"; it holds as long as a minority of base objects crash (crashes
//! are modelled implicitly by scheduling, as in the paper).
//!
//! Because regularity relates a read's result to the writes that completed
//! *before the read started*, it is not a predicate of a single state; the
//! [`RegularityObserver`] history variable records the writer's progress at
//! each read invocation and the property is checked as an invariant over
//! state + observer (the sound version of the paper's footnote-7 "remote
//! state assertions"). The "wrong regularity" debugging specification of
//! Table I additionally demands that reads concurrent with a write already
//! return it — which regular storage does not guarantee, so the checker
//! produces a counterexample.

mod faults;
mod model;
mod properties;
mod single;
mod types;

pub use faults::{
    faulty_quorum_model, faulty_read_completion_property, faulty_reading_leads_to_done,
    faulty_regularity_observer, faulty_regularity_property,
};
pub use model::quorum_model;
pub use properties::{
    read_completion_property, reading_leads_to_done, regularity_property,
    wrong_regularity_property, RegularityObserver, WriteSnapshot,
};
pub use single::single_message_model;
pub use types::{
    BaseObjectState, ReaderPhase, ReaderState, StorageMessage, StorageSetting, StorageState,
    WriterState,
};

/// The role declaration for symmetry reduction (`mp-symmetry`): the base
/// (storing) objects are interchangeable replicas, and the readers — who
/// all run the same one-shot read — are interchangeable too; the single
/// writer is a fixed point. The [`RegularityObserver`] permutes its
/// per-reader snapshots along with the readers, and regularity quantifies
/// over all readers, so the properties are invariant under both roles. The
/// declaration carries over to the fault-augmented models unchanged.
pub fn symmetry_roles(setting: StorageSetting) -> mp_symmetry::RoleMap {
    mp_symmetry::RoleMap::new(setting.num_processes())
        .role(setting.base_object_ids())
        .role(setting.reader_ids())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::{Checker, CheckerConfig};

    #[test]
    fn storage_2_1_satisfies_regularity() {
        let setting = StorageSetting::new(2, 1);
        let spec = quorum_model(setting);
        let report = Checker::with_observer(
            &spec,
            regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .spor()
        .run();
        assert!(report.verdict.is_verified(), "{}", report);
    }

    #[test]
    fn storage_3_1_satisfies_regularity() {
        // Table I row: Regular storage (3,1) — verified.
        let setting = StorageSetting::new(3, 1);
        let spec = quorum_model(setting);
        let report = Checker::with_observer(
            &spec,
            regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .spor()
        .run();
        assert!(report.verdict.is_verified(), "{}", report);
        assert!(report.stats.states > 100);
    }

    #[test]
    fn storage_wrong_regularity_is_violated() {
        // Table I row: Regular storage (3,2) with the wrong specification —
        // counterexample found. A smaller (3,1) instance already exposes it.
        let setting = StorageSetting::new(3, 1);
        let spec = quorum_model(setting);
        let report = Checker::with_observer(
            &spec,
            wrong_regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .config(CheckerConfig::stateful_bfs())
        .run();
        assert!(report.verdict.is_violated(), "{}", report);
    }

    #[test]
    fn single_message_model_agrees_on_verdicts() {
        let setting = StorageSetting::new(2, 1);
        let spec = single_message_model(setting);
        let report = Checker::with_observer(
            &spec,
            regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .spor()
        .run();
        assert!(report.verdict.is_verified(), "{}", report);

        let report = Checker::with_observer(
            &spec,
            wrong_regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .config(CheckerConfig::stateful_bfs())
        .run();
        assert!(report.verdict.is_violated(), "{}", report);
    }

    #[test]
    fn reduced_and_unreduced_searches_agree() {
        let setting = StorageSetting::new(2, 1);
        let spec = quorum_model(setting);
        let unreduced = Checker::with_observer(
            &spec,
            regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .run();
        let reduced = Checker::with_observer(
            &spec,
            regularity_property(setting),
            RegularityObserver::new(setting),
        )
        .spor()
        .run();
        assert!(unreduced.verdict.is_verified());
        assert!(reduced.verdict.is_verified());
        assert!(reduced.stats.states <= unreduced.stats.states);
    }
}
