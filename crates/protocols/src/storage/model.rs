//! The quorum-transition regular storage model (ABD-style single writer).

use mp_model::{Envelope, Outcome, ProtocolBuilder, ProtocolSpec, QuorumSpec, TransitionSpec};

use super::types::{
    BaseObjectState, ReaderPhase, ReaderState, StorageMessage, StorageSetting, StorageState,
    WriterState,
};

const PRIORITY_START: i32 = 10;
const PRIORITY_MIDDLE: i32 = 5;
const PRIORITY_FINISH: i32 = -10;

/// Builds the quorum-transition model of the regular storage protocol.
pub fn quorum_model(setting: StorageSetting) -> ProtocolSpec<StorageState, StorageMessage> {
    let mut builder = declare_processes(setting);
    add_writer_transitions(&mut builder, setting, true);
    add_base_object_transitions(&mut builder, setting);
    add_reader_transitions(&mut builder, setting, true);
    builder
        .build()
        .expect("the storage quorum model is structurally valid")
}

pub(crate) fn declare_processes(
    setting: StorageSetting,
) -> ProtocolBuilder<StorageState, StorageMessage> {
    let mut builder = ProtocolSpec::builder(format!("regular-storage{setting}"));
    builder = builder.process("writer", StorageState::Writer(WriterState::default()));
    for i in 0..setting.base_objects {
        builder = builder.process(
            format!("base{i}"),
            StorageState::BaseObject(BaseObjectState::default()),
        );
    }
    for i in 0..setting.readers {
        builder = builder.process(
            format!("reader{i}"),
            StorageState::Reader(ReaderState::default()),
        );
    }
    builder
}

pub(crate) fn add_writer_transitions(
    builder: &mut ProtocolBuilder<StorageState, StorageMessage>,
    setting: StorageSetting,
    quorum: bool,
) {
    let me = setting.writer();
    let bases = setting.base_object_ids();
    let total_writes = setting.writes as u8;
    let majority = setting.majority();

    // Invoke the next write.
    let bases_invoke = bases.clone();
    builder.add_transition(
        TransitionSpec::builder("W_INVOKE", me)
            .internal()
            .guard(move |local: &StorageState, _| {
                let w = local.as_writer();
                !w.writing && w.writes_done < total_writes
            })
            .sends(&["WRITE"])
            .sends_to(bases_invoke.clone())
            .priority(PRIORITY_START)
            .effect(move |local: &StorageState, _| {
                let mut w = local.as_writer().clone();
                w.writing = true;
                let ts = w.writes_done + 1;
                Outcome::new(StorageState::Writer(w)).broadcast(
                    bases_invoke.clone(),
                    StorageMessage::Write { ts, value: ts },
                )
            })
            .build(),
    );

    // Complete the write on a majority of acknowledgements.
    if quorum {
        builder.add_transition(
            TransitionSpec::builder("W_ACK", me)
                .quorum_input("WRITE_ACK", QuorumSpec::Exact(majority))
                .guard(move |local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                    let w = local.as_writer();
                    w.writing
                        && msgs.iter().all(|m| {
                            matches!(m.payload, StorageMessage::WriteAck { ts } if ts == w.writes_done + 1)
                        })
                })
                .sends_nothing()
                .visible()
                .priority(PRIORITY_MIDDLE)
                .effect(|local: &StorageState, _| {
                    let mut w = local.as_writer().clone();
                    w.writing = false;
                    w.writes_done += 1;
                    Outcome::new(StorageState::Writer(w))
                })
                .build(),
        );
    } else {
        builder.add_transition(
            TransitionSpec::builder("W_ACK", me)
                .single_input("WRITE_ACK")
                .guard(move |local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                    let w = local.as_writer();
                    w.writing
                        && matches!(msgs[0].payload, StorageMessage::WriteAck { ts } if ts == w.writes_done + 1)
                })
                .sends_nothing()
                .visible()
                .priority(PRIORITY_MIDDLE)
                .effect(move |local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                    let mut w = local.as_writer().clone();
                    w.ack_buffer.insert(msgs[0].sender);
                    if w.ack_buffer.len() >= majority {
                        w.ack_buffer.clear();
                        w.writing = false;
                        w.writes_done += 1;
                    }
                    Outcome::new(StorageState::Writer(w))
                })
                .build(),
        );
    }
}

pub(crate) fn add_base_object_transitions(
    builder: &mut ProtocolBuilder<StorageState, StorageMessage>,
    setting: StorageSetting,
) {
    for j in 0..setting.base_objects {
        let me = setting.base_object(j);

        builder.add_transition(
            TransitionSpec::builder(format!("B_WRITE_{j}"), me)
                .single_input("WRITE")
                .reply()
                .sends(&["WRITE_ACK"])
                .priority(PRIORITY_MIDDLE)
                .effect(|local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                    let mut b = local.as_base_object().clone();
                    let StorageMessage::Write { ts, value } = msgs[0].payload else {
                        return Outcome::new(local.clone());
                    };
                    if ts > b.ts {
                        b.ts = ts;
                        b.value = value;
                    }
                    // Base objects acknowledge every write, even stale ones.
                    Outcome::new(StorageState::BaseObject(b))
                        .send(msgs[0].sender, StorageMessage::WriteAck { ts })
                })
                .build(),
        );

        builder.add_transition(
            TransitionSpec::builder(format!("B_READ_{j}"), me)
                .single_input("READ_REQ")
                .reply()
                .sends(&["READ_RESP"])
                .priority(PRIORITY_MIDDLE)
                .effect(|local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                    let b = local.as_base_object().clone();
                    let reply = StorageMessage::ReadResp {
                        ts: b.ts,
                        value: b.value,
                    };
                    Outcome::new(StorageState::BaseObject(b)).send(msgs[0].sender, reply)
                })
                .build(),
        );
    }
}

pub(crate) fn add_reader_transitions(
    builder: &mut ProtocolBuilder<StorageState, StorageMessage>,
    setting: StorageSetting,
    quorum: bool,
) {
    let bases = setting.base_object_ids();
    let majority = setting.majority();
    for r in 0..setting.readers {
        let me = setting.reader(r);

        let bases_invoke = bases.clone();
        builder.add_transition(
            TransitionSpec::builder(format!("R_INVOKE_{r}"), me)
                .internal()
                .guard(|local: &StorageState, _| local.as_reader().phase == ReaderPhase::Idle)
                .sends(&["READ_REQ"])
                .sends_to(bases_invoke.clone())
                .visible()
                .priority(PRIORITY_START)
                .effect(move |local: &StorageState, _| {
                    let mut s = local.as_reader().clone();
                    s.phase = ReaderPhase::Reading;
                    Outcome::new(StorageState::Reader(s))
                        .broadcast(bases_invoke.clone(), StorageMessage::ReadReq)
                })
                .build(),
        );

        if quorum {
            builder.add_transition(
                TransitionSpec::builder(format!("R_RESP_{r}"), me)
                    .quorum_input("READ_RESP", QuorumSpec::Exact(majority))
                    .guard(|local: &StorageState, _| {
                        local.as_reader().phase == ReaderPhase::Reading
                    })
                    .sends_nothing()
                    .visible()
                    .priority(PRIORITY_FINISH)
                    .effect(|local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                        let mut s = local.as_reader().clone();
                        s.result = msgs
                            .iter()
                            .filter_map(|m| match m.payload {
                                StorageMessage::ReadResp { ts, value } => Some((ts, value)),
                                _ => None,
                            })
                            .max();
                        s.phase = ReaderPhase::Done;
                        Outcome::new(StorageState::Reader(s))
                    })
                    .build(),
            );
        } else {
            builder.add_transition(
                TransitionSpec::builder(format!("R_RESP_{r}"), me)
                    .single_input("READ_RESP")
                    .guard(|local: &StorageState, _| {
                        local.as_reader().phase == ReaderPhase::Reading
                    })
                    .sends_nothing()
                    .visible()
                    .priority(PRIORITY_FINISH)
                    .effect(
                        move |local: &StorageState, msgs: &[Envelope<StorageMessage>]| {
                            let mut s = local.as_reader().clone();
                            let StorageMessage::ReadResp { ts, value } = msgs[0].payload else {
                                return Outcome::new(local.clone());
                            };
                            s.resp_buffer.insert((msgs[0].sender, ts, value));
                            if s.resp_buffer.len() >= majority {
                                s.result = s.resp_buffer.iter().map(|(_, t, v)| (*t, *v)).max();
                                s.resp_buffer.clear();
                                s.phase = ReaderPhase::Done;
                            }
                            Outcome::new(StorageState::Reader(s))
                        },
                    )
                    .build(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_model_transition_counts() {
        // writer (2) + 3 base objects (2 each) + 1 reader (2) = 10.
        let setting = StorageSetting::new(3, 1);
        let spec = quorum_model(setting);
        assert_eq!(spec.num_transitions(), 10);
        assert_eq!(spec.num_processes(), 5);
    }

    #[test]
    fn ack_and_response_are_exact_quorums() {
        let setting = StorageSetting::new(3, 1);
        let spec = quorum_model(setting);
        let ack = spec.transition(spec.transition_by_name("W_ACK").unwrap());
        assert!(ack.is_exact_quorum());
        assert_eq!(ack.exact_quorum_size(), Some(2));
        let resp = spec.transition(spec.transition_by_name("R_RESP_0").unwrap());
        assert!(resp.is_exact_quorum());
    }

    #[test]
    fn base_object_transitions_are_replies() {
        let setting = StorageSetting::new(3, 1);
        let spec = quorum_model(setting);
        assert!(
            spec.transition(spec.transition_by_name("B_WRITE_0").unwrap())
                .annotations()
                .is_reply
        );
        assert!(
            spec.transition(spec.transition_by_name("B_READ_2").unwrap())
                .annotations()
                .is_reply
        );
    }

    #[test]
    fn observer_relevant_transitions_are_visible() {
        let setting = StorageSetting::new(3, 2);
        let spec = quorum_model(setting);
        for name in ["W_ACK", "R_INVOKE_0", "R_RESP_1"] {
            assert!(
                spec.transition(spec.transition_by_name(name).unwrap())
                    .annotations()
                    .is_visible,
                "{name} must be visible"
            );
        }
    }
}
