//! Regular storage properties, the regularity observer, and the read
//! completion liveness properties.

use mp_checker::{Invariant, NullObserver, Observer, Property};
use mp_model::{GlobalState, Permutable, Permutation, ProtocolSpec, TransitionInstance};

use super::types::{ReaderPhase, StorageMessage, StorageSetting, StorageState, Timestamp};

/// What the writer was doing when a read was invoked.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WriteSnapshot {
    /// Number of writes that had completed when the read started.
    pub completed: Timestamp,
    /// `true` if a write was in progress (invoked but not yet acknowledged
    /// by a majority) when the read started.
    pub in_progress: bool,
}

/// History observer recording, for every reader, the writer's progress at
/// the moment the read was invoked.
///
/// This is the sound counterpart of the paper's footnote-7 "assertions that
/// read remote state": regularity relates the value a read returns to the
/// writes that completed *before the read started*, which is not a function
/// of a single state — the observer carries exactly that piece of history,
/// and the checker folds it into the explored state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegularityObserver {
    setting: StorageSetting,
    snapshots: Vec<Option<WriteSnapshot>>,
}

// Snapshots are indexed by *reader*: permuting readers permutes the
// snapshot slots along with them (base-object permutations leave the
// observer untouched — the snapshot records only the writer's progress).
impl Permutable for RegularityObserver {
    fn permute(&self, perm: &Permutation) -> Self {
        let mut snapshots = self.snapshots.clone();
        for (i, snapshot) in self.snapshots.iter().enumerate() {
            let image = self
                .setting
                .reader_index(perm.apply(self.setting.reader(i)))
                .expect("role permutations map readers to readers");
            snapshots[image] = *snapshot;
        }
        RegularityObserver {
            setting: self.setting,
            snapshots,
        }
    }
}

impl RegularityObserver {
    /// Creates the observer for a setting (no read invoked yet).
    pub fn new(setting: StorageSetting) -> Self {
        RegularityObserver {
            setting,
            snapshots: vec![None; setting.readers],
        }
    }

    /// Returns the snapshot recorded for reader `index`, if its read has been
    /// invoked.
    pub fn snapshot(&self, index: usize) -> Option<WriteSnapshot> {
        self.snapshots.get(index).copied().flatten()
    }
}

mp_model::codec!(struct WriteSnapshot { completed, in_progress });

// Only the snapshot history is serialized when the disk-backed frontier
// spills this observer; the setting is configuration, re-supplied by the
// decode template (see `Observer::decode_like`).
impl mp_model::Encode for RegularityObserver {
    fn encode(&self, out: &mut Vec<u8>) {
        self.snapshots.encode(out);
    }
}

impl Observer<StorageState, StorageMessage> for RegularityObserver {
    fn decode_like(&self, input: &mut &[u8]) -> Result<Self, mp_model::DecodeError> {
        let snapshots: Vec<Option<WriteSnapshot>> = mp_model::Decode::decode(input)?;
        if snapshots.len() != self.setting.readers {
            return Err(mp_model::DecodeError::new(
                "regularity observer reader count mismatch",
            ));
        }
        Ok(RegularityObserver {
            setting: self.setting,
            snapshots,
        })
    }

    fn update(
        &self,
        _spec: &ProtocolSpec<StorageState, StorageMessage>,
        pre: &GlobalState<StorageState, StorageMessage>,
        instance: &TransitionInstance<StorageMessage>,
        post: &GlobalState<StorageState, StorageMessage>,
    ) -> Self {
        let Some(reader_index) = self.setting.reader_index(instance.process) else {
            return self.clone();
        };
        let was_idle = pre.local(instance.process).as_reader().phase == ReaderPhase::Idle;
        let now_reading = post.local(instance.process).as_reader().phase == ReaderPhase::Reading;
        if !(was_idle && now_reading) {
            return self.clone();
        }
        // The read was just invoked: record the writer's progress.
        let writer = post.local(self.setting.writer()).as_writer();
        let mut next = self.clone();
        next.snapshots[reader_index] = Some(WriteSnapshot {
            completed: writer.writes_done,
            in_progress: writer.writing,
        });
        next
    }
}

/// The **regularity** property of the paper: "a read operation returns a
/// value not older than the one written by the latest preceding write
/// operation". Concretely, a completed read must return a timestamp at least
/// as large as the number of writes that had completed when the read was
/// invoked (and the returned value must be the one written with that
/// timestamp).
pub fn regularity_property(
    setting: StorageSetting,
) -> Invariant<StorageState, StorageMessage, RegularityObserver> {
    read_property(setting, "regularity", false)
}

/// The deliberately wrong specification used for debugging ("wrong
/// regularity"): a read that completes after a write was *invoked* must
/// return that write's value even if the two operations are concurrent.
/// Regular storage does not guarantee this, so the checker finds a
/// counterexample.
pub fn wrong_regularity_property(
    setting: StorageSetting,
) -> Invariant<StorageState, StorageMessage, RegularityObserver> {
    read_property(setting, "wrong-regularity", true)
}

fn read_property(
    setting: StorageSetting,
    name: &str,
    count_in_progress: bool,
) -> Invariant<StorageState, StorageMessage, RegularityObserver> {
    Invariant::new(
        name.to_string(),
        move |state: &GlobalState<StorageState, StorageMessage>, observer: &RegularityObserver| {
            for r in 0..setting.readers {
                let reader = state.local(setting.reader(r)).as_reader();
                if reader.phase != ReaderPhase::Done {
                    continue;
                }
                let Some((ts, value)) = reader.result else {
                    return Err(format!("reader {r} completed without a result"));
                };
                if ts > 0 && value != ts {
                    return Err(format!(
                        "integrity violated: reader {r} returned value {value} for timestamp {ts}"
                    ));
                }
                let Some(snapshot) = observer.snapshot(r) else {
                    return Err(format!(
                        "reader {r} completed a read that was never observed as invoked"
                    ));
                };
                let mut required = snapshot.completed;
                if count_in_progress && snapshot.in_progress {
                    required += 1;
                }
                if ts < required {
                    return Err(format!(
                        "reader {r} returned timestamp {ts} but {required} write(s) \
                         {} before the read started",
                        if count_in_progress {
                            "had completed or were in progress"
                        } else {
                            "had completed"
                        }
                    ));
                }
            }
            Ok(())
        },
    )
}

/// The **read completion** termination property: every fair maximal
/// execution ends with every reader's read completed ([`ReaderPhase::Done`]).
/// On the seed model the majority of base objects always answers; a crashed
/// or silenced majority leaves a read pending forever.
pub fn read_completion_property(
    setting: StorageSetting,
) -> Property<StorageState, StorageMessage, NullObserver> {
    Property::termination(
        "read-completion",
        move |state: &GlobalState<StorageState, StorageMessage>, _: &NullObserver| {
            (0..setting.readers)
                .all(|r| state.local(setting.reader(r)).as_reader().phase == ReaderPhase::Done)
        },
    )
}

/// The **leads-to** property `reading ⇝ done`: whenever some read is in
/// progress, every in-progress read eventually completes (on every fair
/// maximal execution). Vacuous on executions where no read is ever invoked,
/// isolating the query/response half of the protocol from read invocation.
pub fn reading_leads_to_done(
    setting: StorageSetting,
) -> Property<StorageState, StorageMessage, NullObserver> {
    Property::leads_to(
        "reading-leads-to-done",
        move |state: &GlobalState<StorageState, StorageMessage>, _: &NullObserver| {
            (0..setting.readers)
                .any(|r| state.local(setting.reader(r)).as_reader().phase == ReaderPhase::Reading)
        },
        move |state: &GlobalState<StorageState, StorageMessage>, _: &NullObserver| {
            (0..setting.readers)
                .all(|r| state.local(setting.reader(r)).as_reader().phase != ReaderPhase::Reading)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::quorum_model;
    use mp_checker::PropertyStatus;

    fn setting() -> StorageSetting {
        StorageSetting::new(3, 1)
    }

    #[test]
    fn observer_records_read_invocation() {
        let setting = setting();
        let spec = quorum_model(setting);
        let mut pre = spec.initial_state();
        // Pretend one write completed and another is running.
        if let StorageState::Writer(w) = pre.local_mut(setting.writer()) {
            w.writes_done = 1;
            w.writing = true;
        }
        let mut post = pre.clone();
        if let StorageState::Reader(r) = post.local_mut(setting.reader(0)) {
            r.phase = ReaderPhase::Reading;
        }
        let invoke_id = spec.transition_by_name("R_INVOKE_0").unwrap();
        let instance = TransitionInstance::new(invoke_id, setting.reader(0), Vec::new());
        let observer = RegularityObserver::new(setting);
        assert_eq!(observer.snapshot(0), None);
        let updated = observer.update(&spec, &pre, &instance, &post);
        let snap = updated.snapshot(0).unwrap();
        assert_eq!(snap.completed, 1);
        assert!(snap.in_progress);
    }

    #[test]
    fn observer_ignores_non_reader_transitions() {
        let setting = setting();
        let spec = quorum_model(setting);
        let state = spec.initial_state();
        let write_id = spec.transition_by_name("W_INVOKE").unwrap();
        let instance = TransitionInstance::new(write_id, setting.writer(), Vec::new());
        let observer = RegularityObserver::new(setting);
        let updated = observer.update(&spec, &state, &instance, &state);
        assert_eq!(updated, observer);
    }

    #[test]
    fn seed_storage_reads_always_complete() {
        use mp_checker::Checker;
        let setting = StorageSetting::new(2, 1);
        let spec = quorum_model(setting);
        let report = Checker::new(&spec, read_completion_property(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
        let report = Checker::new(&spec, reading_leads_to_done(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn stale_read_after_completed_write_is_flagged() {
        let setting = setting();
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        if let StorageState::Reader(r) = state.local_mut(setting.reader(0)) {
            r.phase = ReaderPhase::Done;
            r.result = Some((0, 0));
        }
        let mut observer = RegularityObserver::new(setting);
        observer.snapshots[0] = Some(WriteSnapshot {
            completed: 1,
            in_progress: false,
        });
        let prop = regularity_property(setting);
        match prop.evaluate(&state, &observer) {
            PropertyStatus::Violated(reason) => assert!(reason.contains("timestamp 0")),
            PropertyStatus::Holds => panic!("expected a violation"),
        }
    }

    #[test]
    fn fresh_read_satisfies_regularity_but_not_wrong_regularity() {
        let setting = setting();
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        if let StorageState::Reader(r) = state.local_mut(setting.reader(0)) {
            r.phase = ReaderPhase::Done;
            r.result = Some((0, 0));
        }
        let mut observer = RegularityObserver::new(setting);
        // No write completed, but one was in progress when the read started.
        observer.snapshots[0] = Some(WriteSnapshot {
            completed: 0,
            in_progress: true,
        });
        assert!(regularity_property(setting)
            .evaluate(&state, &observer)
            .holds());
        assert!(!wrong_regularity_property(setting)
            .evaluate(&state, &observer)
            .holds());
    }

    #[test]
    fn value_integrity_is_checked() {
        let setting = setting();
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        if let StorageState::Reader(r) = state.local_mut(setting.reader(0)) {
            r.phase = ReaderPhase::Done;
            r.result = Some((2, 1));
        }
        let mut observer = RegularityObserver::new(setting);
        observer.snapshots[0] = Some(WriteSnapshot {
            completed: 2,
            in_progress: false,
        });
        let prop = regularity_property(setting);
        match prop.evaluate(&state, &observer) {
            PropertyStatus::Violated(reason) => assert!(reason.contains("integrity")),
            PropertyStatus::Holds => panic!("expected a violation"),
        }
    }
}
