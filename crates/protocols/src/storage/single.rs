//! The single-message regular storage model (Table I "No quorum" columns).

use mp_model::ProtocolSpec;

use super::model::{
    add_base_object_transitions, add_reader_transitions, add_writer_transitions, declare_processes,
};
use super::types::{StorageMessage, StorageSetting, StorageState};

/// Builds the single-message-transition model of the regular storage
/// protocol: the writer buffers acknowledgements and the readers buffer
/// responses one message at a time.
pub fn single_message_model(setting: StorageSetting) -> ProtocolSpec<StorageState, StorageMessage> {
    let mut builder = declare_processes(setting);
    add_writer_transitions(&mut builder, setting, false);
    add_base_object_transitions(&mut builder, setting);
    add_reader_transitions(&mut builder, setting, false);
    builder
        .build()
        .expect("the storage single-message model is structurally valid")
        .renamed(format!("regular-storage{setting}-single"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::quorum_model;
    use mp_model::StateGraph;

    #[test]
    fn single_message_model_has_no_quorum_transitions() {
        let setting = StorageSetting::new(3, 1);
        let spec = single_message_model(setting);
        for (_, t) in spec.transitions() {
            assert!(
                !t.is_quorum(),
                "`{}` must not be a quorum transition",
                t.name()
            );
        }
        assert_eq!(
            spec.num_transitions(),
            quorum_model(setting).num_transitions()
        );
    }

    #[test]
    fn single_message_state_space_is_larger() {
        let setting = StorageSetting::with_writes(2, 1, 1);
        let q = quorum_model(setting);
        let s = single_message_model(setting);
        let gq = StateGraph::build(&q, 1_000_000).unwrap();
        let gs = StateGraph::build(&s, 1_000_000).unwrap();
        assert!(
            gs.num_states() > gq.num_states(),
            "single-message {} vs quorum {}",
            gs.num_states(),
            gq.num_states()
        );
    }
}
