//! Settings, messages and local states of the regular storage model.

use std::collections::BTreeSet;
use std::fmt;

use mp_model::{Kind, Message, Permutable, Permutation, ProcessId};

/// Timestamps of write operations (write `k` has timestamp `k`, the initial
/// value has timestamp 0).
pub type Timestamp = u8;

/// Stored values; write `k` writes value `k`.
pub type Value = u8;

/// A regular storage setting `(B, R)`: the number of base objects and
/// readers (paper, Section V-A "Protocol settings"). The protocol is
/// single-writer, so there is always exactly one writer process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StorageSetting {
    /// Number of base (storing) objects.
    pub base_objects: usize,
    /// Number of reader processes.
    pub readers: usize,
    /// Number of write operations the writer performs (2 in the paper-style
    /// workload: the interesting interleavings need at least two writes).
    pub writes: usize,
}

impl StorageSetting {
    /// Creates a setting with the default two-write workload; e.g.
    /// `StorageSetting::new(3, 1)` is the paper's Regular storage (3,1).
    ///
    /// # Panics
    ///
    /// Panics if there are no base objects or no readers.
    pub fn new(base_objects: usize, readers: usize) -> Self {
        Self::with_writes(base_objects, readers, 2)
    }

    /// Creates a setting with an explicit number of writes.
    ///
    /// # Panics
    ///
    /// Panics if there are no base objects, no readers, or no writes.
    pub fn with_writes(base_objects: usize, readers: usize, writes: usize) -> Self {
        assert!(
            base_objects > 0 && readers > 0 && writes > 0,
            "a storage setting needs base objects, readers and at least one write"
        );
        StorageSetting {
            base_objects,
            readers,
            writes,
        }
    }

    /// Total number of processes (writer + base objects + readers).
    pub fn num_processes(&self) -> usize {
        1 + self.base_objects + self.readers
    }

    /// A majority of the base objects — the quorum used by both write
    /// acknowledgements and read responses.
    pub fn majority(&self) -> usize {
        self.base_objects / 2 + 1
    }

    /// The writer's process id.
    pub fn writer(&self) -> ProcessId {
        ProcessId(0)
    }

    /// Process id of base object `i`.
    pub fn base_object(&self, i: usize) -> ProcessId {
        assert!(i < self.base_objects);
        ProcessId(1 + i)
    }

    /// Process id of reader `i`.
    pub fn reader(&self, i: usize) -> ProcessId {
        assert!(i < self.readers);
        ProcessId(1 + self.base_objects + i)
    }

    /// All base object ids.
    pub fn base_object_ids(&self) -> Vec<ProcessId> {
        (0..self.base_objects)
            .map(|i| self.base_object(i))
            .collect()
    }

    /// All reader ids.
    pub fn reader_ids(&self) -> Vec<ProcessId> {
        (0..self.readers).map(|i| self.reader(i)).collect()
    }

    /// Returns the reader index of a process id, if it is a reader.
    pub fn reader_index(&self, process: ProcessId) -> Option<usize> {
        let first = 1 + self.base_objects;
        if process.index() >= first && process.index() < first + self.readers {
            Some(process.index() - first)
        } else {
            None
        }
    }
}

impl fmt::Display for StorageSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.base_objects, self.readers)
    }
}

/// Regular storage messages.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StorageMessage {
    /// Writer asks a base object to store a timestamped value.
    Write {
        /// The timestamp of the write (1-based).
        ts: Timestamp,
        /// The value being written.
        value: Value,
    },
    /// A base object acknowledges a write.
    WriteAck {
        /// The timestamp being acknowledged.
        ts: Timestamp,
    },
    /// A reader asks a base object for its current contents.
    ReadReq,
    /// A base object answers a read request.
    ReadResp {
        /// The stored timestamp.
        ts: Timestamp,
        /// The stored value.
        value: Value,
    },
}

mp_model::codec!(enum StorageMessage {
    0 = Write { ts, value },
    1 = WriteAck { ts },
    2 = ReadReq,
    3 = ReadResp { ts, value },
});

impl Message for StorageMessage {
    fn kind(&self) -> Kind {
        match self {
            StorageMessage::Write { .. } => "WRITE",
            StorageMessage::WriteAck { .. } => "WRITE_ACK",
            StorageMessage::ReadReq => "READ_REQ",
            StorageMessage::ReadResp { .. } => "READ_RESP",
        }
    }
}

// Storage messages carry timestamps and values only.
impl Permutable for StorageMessage {
    fn permute(&self, _perm: &Permutation) -> Self {
        self.clone()
    }
}

/// Local state of the writer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WriterState {
    /// Number of completed writes.
    pub writes_done: Timestamp,
    /// `true` while a write is in progress (invoked, not yet acknowledged by
    /// a majority).
    pub writing: bool,
    /// Acknowledgement buffer used by the single-message model.
    pub ack_buffer: BTreeSet<ProcessId>,
}

/// Local state of a base object.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BaseObjectState {
    /// Highest timestamp stored.
    pub ts: Timestamp,
    /// The value stored with that timestamp.
    pub value: Value,
}

/// Phases of a reader.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum ReaderPhase {
    /// The read has not been invoked yet.
    #[default]
    Idle,
    /// The read request was sent to every base object.
    Reading,
    /// The read completed.
    Done,
}

/// Local state of a reader.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ReaderState {
    /// Current phase.
    pub phase: ReaderPhase,
    /// The (timestamp, value) the completed read returned.
    pub result: Option<(Timestamp, Value)>,
    /// Response buffer used by the single-message model
    /// (base object, timestamp, value).
    pub resp_buffer: BTreeSet<(ProcessId, Timestamp, Value)>,
}

mp_model::codec!(struct WriterState { writes_done, writing, ack_buffer });
mp_model::codec!(struct BaseObjectState { ts, value });
mp_model::codec!(enum ReaderPhase { 0 = Idle, 1 = Reading, 2 = Done });
mp_model::codec!(struct ReaderState { phase, result, resp_buffer });

/// Local state of any storage process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StorageState {
    /// The single writer.
    Writer(WriterState),
    /// A base (storing) object.
    BaseObject(BaseObjectState),
    /// A reader.
    Reader(ReaderState),
}

mp_model::codec!(enum StorageState {
    0 = Writer(state),
    1 = BaseObject(state),
    2 = Reader(state),
});

// The single-message models buffer sender ids (write acknowledgements and
// read responses); symmetry reduction rewrites them with the permutation.
impl Permutable for StorageState {
    fn permute(&self, perm: &Permutation) -> Self {
        match self {
            StorageState::Writer(w) => StorageState::Writer(WriterState {
                writes_done: w.writes_done,
                writing: w.writing,
                ack_buffer: w.ack_buffer.permute(perm),
            }),
            StorageState::BaseObject(b) => StorageState::BaseObject(b.clone()),
            StorageState::Reader(r) => StorageState::Reader(ReaderState {
                phase: r.phase,
                result: r.result,
                resp_buffer: r.resp_buffer.permute(perm),
            }),
        }
    }
}

impl StorageState {
    /// Returns the writer state.
    ///
    /// # Panics
    ///
    /// Panics if this is a different role.
    pub fn as_writer(&self) -> &WriterState {
        match self {
            StorageState::Writer(w) => w,
            other => panic!("expected the writer, found {other:?}"),
        }
    }

    /// Returns the base-object state.
    ///
    /// # Panics
    ///
    /// Panics if this is a different role.
    pub fn as_base_object(&self) -> &BaseObjectState {
        match self {
            StorageState::BaseObject(b) => b,
            other => panic!("expected a base object, found {other:?}"),
        }
    }

    /// Returns the reader state.
    ///
    /// # Panics
    ///
    /// Panics if this is a different role.
    pub fn as_reader(&self) -> &ReaderState {
        match self {
            StorageState::Reader(r) => r,
            other => panic!("expected a reader, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_majority() {
        let s = StorageSetting::new(3, 2);
        assert_eq!(s.num_processes(), 6);
        assert_eq!(s.majority(), 2);
        assert_eq!(s.writer(), ProcessId(0));
        assert_eq!(s.base_object(0), ProcessId(1));
        assert_eq!(s.base_object(2), ProcessId(3));
        assert_eq!(s.reader(0), ProcessId(4));
        assert_eq!(s.reader(1), ProcessId(5));
        assert_eq!(s.writes, 2);
        assert_eq!(s.to_string(), "(3,2)");
    }

    #[test]
    fn reader_index_resolution() {
        let s = StorageSetting::new(3, 2);
        assert_eq!(s.reader_index(ProcessId(4)), Some(0));
        assert_eq!(s.reader_index(ProcessId(5)), Some(1));
        assert_eq!(s.reader_index(ProcessId(0)), None);
        assert_eq!(s.reader_index(ProcessId(3)), None);
    }

    #[test]
    fn message_kinds() {
        assert_eq!(StorageMessage::Write { ts: 1, value: 1 }.kind(), "WRITE");
        assert_eq!(StorageMessage::WriteAck { ts: 1 }.kind(), "WRITE_ACK");
        assert_eq!(StorageMessage::ReadReq.kind(), "READ_REQ");
        assert_eq!(
            StorageMessage::ReadResp { ts: 0, value: 0 }.kind(),
            "READ_RESP"
        );
    }

    #[test]
    #[should_panic(expected = "base objects")]
    fn zero_base_objects_rejected() {
        StorageSetting::new(0, 1);
    }
}
