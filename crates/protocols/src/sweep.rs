//! A parametric quorum-collection protocol used for the Section II-C
//! state-space analysis.
//!
//! Section II-C of the paper argues analytically that expressing a quorum
//! transition through single-message transitions inflates the state space by
//! roughly `(k + l)²` where `l` is the quorum size. This module provides the
//! smallest protocol family exhibiting that effect: `c` independent
//! collectors each waiting for a quorum of `q` votes from `n` voters. The
//! `quorum_scaling` harness binary and benchmark sweep `n` and `q` over this
//! family and report the measured ratio between the two modelling styles.

use std::collections::BTreeSet;

use mp_checker::{Invariant, NullObserver};
use mp_model::{
    Envelope, GlobalState, Kind, Message, Outcome, ProcessId, ProtocolSpec, QuorumSpec,
    TransitionSpec,
};

/// Messages of the collection protocol.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vote {
    /// The collector the vote is addressed to.
    pub collector: u8,
}

mp_model::codec!(struct Vote { collector });

impl Message for Vote {
    fn kind(&self) -> Kind {
        "VOTE"
    }
}

/// Local state of collection-protocol processes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CollectState {
    /// A voter; `true` once it has voted.
    Voter(bool),
    /// A collector: the votes buffered so far (single-message model only)
    /// and whether the quorum has been collected.
    Collector {
        /// Senders of buffered votes (single-message model).
        votes: BTreeSet<ProcessId>,
        /// `true` once the quorum was reached.
        done: bool,
    },
}

mp_model::codec!(enum CollectState {
    0 = Voter(voted),
    1 = Collector { votes, done },
});

/// Parameters of the collection protocol family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CollectSetting {
    /// Number of voters.
    pub voters: usize,
    /// Quorum size each collector waits for.
    pub quorum: usize,
    /// Number of collectors (each voter votes for every collector).
    pub collectors: usize,
}

impl CollectSetting {
    /// Creates a setting.
    ///
    /// # Panics
    ///
    /// Panics if the quorum is zero or larger than the number of voters, or
    /// if there are no collectors.
    pub fn new(voters: usize, quorum: usize, collectors: usize) -> Self {
        assert!(
            quorum > 0 && quorum <= voters,
            "quorum must be in 1..=voters"
        );
        assert!(collectors > 0, "at least one collector is required");
        CollectSetting {
            voters,
            quorum,
            collectors,
        }
    }

    /// Process id of collector `i`.
    pub fn collector(&self, i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Process id of voter `i`.
    pub fn voter(&self, i: usize) -> ProcessId {
        ProcessId(self.collectors + i)
    }
}

/// Builds the collection protocol with quorum transitions (`quorum = true`)
/// or with single-message buffering transitions (`quorum = false`).
pub fn collect_model(setting: CollectSetting, quorum: bool) -> ProtocolSpec<CollectState, Vote> {
    let mut builder = ProtocolSpec::builder(format!(
        "collect(v={},q={},c={},{})",
        setting.voters,
        setting.quorum,
        setting.collectors,
        if quorum { "quorum" } else { "single" }
    ));
    for i in 0..setting.collectors {
        builder = builder.process(
            format!("collector{i}"),
            CollectState::Collector {
                votes: BTreeSet::new(),
                done: false,
            },
        );
    }
    for i in 0..setting.voters {
        builder = builder.process(format!("voter{i}"), CollectState::Voter(false));
    }

    let collectors: Vec<ProcessId> = (0..setting.collectors)
        .map(|i| setting.collector(i))
        .collect();
    for i in 0..setting.voters {
        let me = setting.voter(i);
        let collectors_for_vote = collectors.clone();
        builder = builder.transition(
            TransitionSpec::builder(format!("VOTE_{i}"), me)
                .internal()
                .guard(|local: &CollectState, _| matches!(local, CollectState::Voter(false)))
                .sends(&["VOTE"])
                .sends_to(collectors_for_vote.clone())
                .priority(10)
                .effect(move |_, _| {
                    let mut outcome = Outcome::new(CollectState::Voter(true));
                    for (c, target) in collectors_for_vote.iter().enumerate() {
                        outcome = outcome.send(*target, Vote { collector: c as u8 });
                    }
                    outcome
                })
                .build(),
        );
    }

    for c in 0..setting.collectors {
        let me = setting.collector(c);
        let q = setting.quorum;
        if quorum {
            builder = builder.transition(
                TransitionSpec::builder(format!("COLLECT_{c}"), me)
                    .quorum_input("VOTE", QuorumSpec::Exact(q))
                    .guard(move |local: &CollectState, _| {
                        matches!(local, CollectState::Collector { done: false, .. })
                    })
                    .sends_nothing()
                    .visible()
                    .priority(-10)
                    .effect(|_, _| {
                        Outcome::new(CollectState::Collector {
                            votes: BTreeSet::new(),
                            done: true,
                        })
                    })
                    .build(),
            );
        } else {
            builder = builder.transition(
                TransitionSpec::builder(format!("COLLECT_{c}"), me)
                    .single_input("VOTE")
                    .guard(move |local: &CollectState, _| {
                        matches!(local, CollectState::Collector { done: false, .. })
                    })
                    .sends_nothing()
                    .visible()
                    .priority(-10)
                    .effect(move |local: &CollectState, msgs: &[Envelope<Vote>]| {
                        let CollectState::Collector { votes, done } = local else {
                            return Outcome::new(local.clone());
                        };
                        let mut votes = votes.clone();
                        votes.insert(msgs[0].sender);
                        let done = *done || votes.len() >= q;
                        if done {
                            votes.clear();
                        }
                        Outcome::new(CollectState::Collector { votes, done })
                    })
                    .build(),
            );
        }
    }

    builder
        .build()
        .expect("the collection protocol is structurally valid")
}

/// A trivial invariant for pure state-space measurement runs over the
/// collection protocol.
pub fn collect_true_property() -> Invariant<CollectState, Vote, NullObserver> {
    Invariant::always_true("state-space measurement")
}

/// Invariant stating that a collector is only done when a quorum of voters
/// has voted — used as a sanity property in tests.
pub fn collect_soundness_property(
    setting: CollectSetting,
) -> Invariant<CollectState, Vote, NullObserver> {
    Invariant::new(
        "collector-done-implies-quorum-voted",
        move |state: &GlobalState<CollectState, Vote>, _| {
            let voted = (0..setting.voters)
                .filter(|i| matches!(state.local(setting.voter(*i)), CollectState::Voter(true)))
                .count();
            for c in 0..setting.collectors {
                if matches!(
                    state.local(setting.collector(c)),
                    CollectState::Collector { done: true, .. }
                ) && voted < setting.quorum
                {
                    return Err(format!(
                        "collector {c} finished with only {voted} voters having voted"
                    ));
                }
            }
            Ok(())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::Checker;
    use mp_model::StateGraph;

    #[test]
    fn quorum_and_single_models_have_same_terminal_behaviour() {
        let setting = CollectSetting::new(3, 2, 1);
        for quorum in [true, false] {
            let spec = collect_model(setting, quorum);
            let report = Checker::new(&spec, collect_soundness_property(setting)).run();
            assert!(report.verdict.is_verified(), "{}", report);
        }
    }

    #[test]
    fn single_message_model_is_larger_and_grows_with_quorum() {
        let mut ratios = Vec::new();
        for q in [1usize, 2, 3] {
            let setting = CollectSetting::new(3, q, 1);
            let quorum = StateGraph::build(&collect_model(setting, true), 1_000_000)
                .unwrap()
                .num_states();
            let single = StateGraph::build(&collect_model(setting, false), 1_000_000)
                .unwrap()
                .num_states();
            assert!(single >= quorum);
            ratios.push(single as f64 / quorum as f64);
        }
        assert!(
            ratios[2] > ratios[0],
            "the inflation must grow with the quorum size: {ratios:?}"
        );
    }

    #[test]
    #[should_panic(expected = "quorum must be")]
    fn oversized_quorum_is_rejected() {
        CollectSetting::new(2, 3, 1);
    }
}
