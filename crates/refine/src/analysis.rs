//! Conservative static analysis used by the refinement strategies.
//!
//! Quorum-split "can be further reduced by ruling out a process `i` that
//! never sends messages consumed by `t`" (paper, Section III-C,
//! Implementation). This module computes, for a transition, the set of
//! processes that could possibly send it a message, based on the Table-IV
//! style annotations of the other transitions. When annotations are missing
//! the analysis is conservative (the process is assumed to be a possible
//! sender), which can only make the split coarser, never unsound.

use std::collections::BTreeSet;

use mp_model::{
    InputSpec, Kind, LocalState, Message, ProcessId, ProtocolSpec, RecipientSet, TransitionId,
    TransitionSpec,
};

/// Returns the set of processes that may send a message consumed by
/// `transition`, i.e. the candidate members of its quorums.
pub fn candidate_senders<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    transition: TransitionId,
) -> BTreeSet<ProcessId> {
    let target = spec.transition(transition);
    let Some(kind) = target.input_kind() else {
        return BTreeSet::new();
    };
    let mut senders = BTreeSet::new();
    for process in spec.processes() {
        if process == target.process() {
            // A process never sends to itself in the message-passing model of
            // the paper (channels are between distinct processes in all its
            // examples); ruling it out matches the Paxos discussion where a
            // proposer never sends to another proposer.
            continue;
        }
        if !target.may_receive_from(process) {
            continue;
        }
        let could_send = spec
            .transitions_of(process)
            .iter()
            .any(|tid| may_send_kind_to(spec.transition(*tid), kind, target.process()));
        if could_send {
            senders.insert(process);
        }
    }
    senders
}

/// Returns `true` if transition `t` may send a message of `kind` to
/// `recipient`, interpreting missing annotations conservatively.
pub fn may_send_kind_to<S: LocalState, M: Message>(
    t: &TransitionSpec<S, M>,
    kind: Kind,
    recipient: ProcessId,
) -> bool {
    let ann = t.annotations();
    if matches!(ann.recipients, RecipientSet::None) {
        return false;
    }
    if !ann.recipients.may_send_to(recipient, t.allowed_senders()) {
        return false;
    }
    if ann.messages_out.is_empty() {
        return true;
    }
    ann.messages_out.contains(&kind)
}

/// Returns `true` if `t` is a single-message reply transition in the sense
/// of Definition 4, detectable from its annotations: it consumes exactly one
/// message and only sends to the senders of its input.
pub fn is_reply_transition<S: LocalState, M: Message>(t: &TransitionSpec<S, M>) -> bool {
    t.annotations().is_reply
        && matches!(
            t.annotations().recipients,
            RecipientSet::SendersOfInput | RecipientSet::None
        )
        && matches!(
            t.input(),
            InputSpec::Single { .. } | InputSpec::Quorum { .. }
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Outcome, QuorumSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Vote,
        Other,
    }
    mp_model::codec!(enum Msg { 0 = Vote, 1 = Other });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Vote => "VOTE",
                Msg::Other => "OTHER",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn spec() -> ProtocolSpec<u8, Msg> {
        ProtocolSpec::builder("s")
            .process("collector", 0u8)
            .process("voter", 0u8)
            .process("silent", 0u8)
            .process("other-sender", 0u8)
            .transition(
                TransitionSpec::builder("VOTE", p(1))
                    .internal()
                    .sends(&["VOTE"])
                    .sends_to([p(0)])
                    .effect(|_, _| Outcome::new(1).send(p(0), Msg::Vote))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("SILENT", p(2))
                    .internal()
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("OTHER", p(3))
                    .internal()
                    .sends(&["OTHER"])
                    .sends_to([p(0)])
                    .effect(|_, _| Outcome::new(1).send(p(0), Msg::Other))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("COLLECT", p(0))
                    .quorum_input("VOTE", QuorumSpec::Exact(1))
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn candidate_senders_excludes_silent_and_wrong_kind() {
        let s = spec();
        let collect = s.transition_by_name("COLLECT").unwrap();
        let senders = candidate_senders(&s, collect);
        assert!(senders.contains(&p(1)), "the voter is a candidate");
        assert!(!senders.contains(&p(2)), "silent processes are excluded");
        assert!(!senders.contains(&p(3)), "wrong-kind senders are excluded");
        assert!(!senders.contains(&p(0)), "self is excluded");
    }

    #[test]
    fn internal_transition_has_no_candidate_senders() {
        let s = spec();
        let vote = s.transition_by_name("VOTE").unwrap();
        assert!(candidate_senders(&s, vote).is_empty());
    }

    #[test]
    fn may_send_kind_to_respects_annotations() {
        let s = spec();
        let vote = s.transition(s.transition_by_name("VOTE").unwrap());
        assert!(may_send_kind_to(vote, "VOTE", p(0)));
        assert!(!may_send_kind_to(vote, "VOTE", p(2)));
        assert!(!may_send_kind_to(vote, "OTHER", p(0)));
        let silent = s.transition(s.transition_by_name("SILENT").unwrap());
        assert!(!may_send_kind_to(silent, "VOTE", p(0)));
    }

    #[test]
    fn reply_detection() {
        let reply: TransitionSpec<u8, Msg> = TransitionSpec::builder("R", p(0))
            .single_input("VOTE")
            .reply()
            .effect(|l, _| Outcome::new(*l))
            .build();
        assert!(is_reply_transition(&reply));
        let not_reply: TransitionSpec<u8, Msg> = TransitionSpec::builder("N", p(0))
            .single_input("VOTE")
            .effect(|l, _| Outcome::new(*l))
            .build();
        assert!(!is_reply_transition(&not_reply));
    }
}
