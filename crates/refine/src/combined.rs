//! Combined-split refinement: reply-split plus quorum-split.
//!
//! The paper's Table II evaluates three split models per protocol: splitting
//! only reply transitions (*reply-split*), only non-reply quorum transitions
//! (*quorum-split*), and all of them (*combined-split*). [`combined_split`]
//! composes the two strategies; because each is a transition refinement
//! (Theorem 2), the composition is one as well.

use mp_model::{LocalState, Message, ModelError, ProtocolSpec};

use crate::{quorum_split_all, reply_split_all};

/// Applies reply-split to every reply transition and quorum-split to every
/// other exact quorum transition.
pub fn combined_split<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
) -> Result<ProtocolSpec<S, M>, ModelError> {
    let replies = reply_split_all(spec)?;
    let both = quorum_split_all(&replies)?;
    Ok(both.renamed(format!("{}+combined-split", spec.name())))
}

/// The refinement strategies of Table II, as a value the harness can iterate
/// over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitStrategy {
    /// The unsplit quorum model (Table II column "Quorum").
    Unsplit,
    /// Split reply transitions only.
    ReplySplit,
    /// Split non-reply exact quorum transitions only.
    QuorumSplit,
    /// Split both.
    CombinedSplit,
}

impl SplitStrategy {
    /// All strategies in the order of the paper's Table II columns.
    pub const ALL: [SplitStrategy; 4] = [
        SplitStrategy::Unsplit,
        SplitStrategy::ReplySplit,
        SplitStrategy::QuorumSplit,
        SplitStrategy::CombinedSplit,
    ];

    /// The column label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SplitStrategy::Unsplit => "quorum (unsplit)",
            SplitStrategy::ReplySplit => "reply-split",
            SplitStrategy::QuorumSplit => "quorum-split",
            SplitStrategy::CombinedSplit => "combined-split",
        }
    }

    /// Applies this strategy to a protocol.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the underlying split functions.
    pub fn apply<S: LocalState, M: Message>(
        &self,
        spec: &ProtocolSpec<S, M>,
    ) -> Result<ProtocolSpec<S, M>, ModelError> {
        match self {
            SplitStrategy::Unsplit => Ok(spec.clone()),
            SplitStrategy::ReplySplit => reply_split_all(spec),
            SplitStrategy::QuorumSplit => quorum_split_all(spec),
            SplitStrategy::CombinedSplit => combined_split(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Outcome, ProcessId, QuorumSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Read(u8),
        ReadRepl(u8),
    }
    mp_model::codec!(enum Msg { 0 = Read(n), 1 = ReadRepl(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Read(_) => "READ",
                Msg::ReadRepl(_) => "READ_REPL",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// One proposer-like process (p0) asks three acceptor-like processes
    /// (p1..p3) and collects two replies; the acceptors reply to the asker.
    fn mini_paxos_phase1() -> ProtocolSpec<u8, Msg> {
        let mut b = ProtocolSpec::builder("phase1").process("proposer", 0u8);
        for i in 1..=3 {
            b = b.process(format!("acceptor{i}"), 0u8);
        }
        b = b.transition(
            TransitionSpec::builder("READ", p(0))
                .internal()
                .guard(|l, _| *l == 0)
                .sends(&["READ"])
                .sends_to([p(1), p(2), p(3)])
                .effect(|_, _| {
                    Outcome::new(1)
                        .send(p(1), Msg::Read(0))
                        .send(p(2), Msg::Read(0))
                        .send(p(3), Msg::Read(0))
                })
                .build(),
        );
        for i in 1..=3usize {
            b = b.transition(
                TransitionSpec::builder(format!("READ_ACC_{i}"), p(i))
                    .single_input("READ")
                    .reply()
                    .sends(&["READ_REPL"])
                    .effect(move |_, m: &[mp_model::Envelope<Msg>]| {
                        Outcome::new(1).send(m[0].sender, Msg::ReadRepl(i as u8))
                    })
                    .build(),
            );
        }
        b.transition(
            TransitionSpec::builder("READ_REPL", p(0))
                .quorum_input("READ_REPL", QuorumSpec::Exact(2))
                .guard(|l, _| *l == 1)
                .sends_nothing()
                .effect(|_, _| Outcome::new(2))
                .build(),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn strategies_produce_expected_transition_counts() {
        let spec = mini_paxos_phase1();
        assert_eq!(spec.num_transitions(), 5);
        // The acceptor replies have a single candidate partner (the only
        // proposer), so reply-split leaves them alone.
        let reply = SplitStrategy::ReplySplit.apply(&spec).unwrap();
        assert_eq!(reply.num_transitions(), 5);
        // READ_REPL (quorum 2 of 3 acceptors) splits into 3 copies.
        let quorum = SplitStrategy::QuorumSplit.apply(&spec).unwrap();
        assert_eq!(quorum.num_transitions(), 7);
        let combined = SplitStrategy::CombinedSplit.apply(&spec).unwrap();
        assert_eq!(combined.num_transitions(), 7);
        let unsplit = SplitStrategy::Unsplit.apply(&spec).unwrap();
        assert_eq!(unsplit.num_transitions(), 5);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SplitStrategy::Unsplit.label(), "quorum (unsplit)");
        assert_eq!(SplitStrategy::ReplySplit.label(), "reply-split");
        assert_eq!(SplitStrategy::QuorumSplit.label(), "quorum-split");
        assert_eq!(SplitStrategy::CombinedSplit.label(), "combined-split");
        assert_eq!(SplitStrategy::ALL.len(), 4);
    }

    #[test]
    fn combined_split_renames_the_protocol() {
        let spec = mini_paxos_phase1();
        let combined = combined_split(&spec).unwrap();
        assert!(combined.name().contains("combined-split"));
    }
}
