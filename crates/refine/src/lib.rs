//! # mp-refine — transition refinement (quorum-split and reply-split)
//!
//! Transition refinement rewrites a protocol's *transition set* without
//! changing its state graph (Definition 1 of the DSN 2011 paper), so that
//! partial-order reduction can detect more independence and prune more of
//! the state space (Theorem 1 guarantees that any POR-preserved property is
//! unaffected). The paper introduces two strategies, both implemented here:
//!
//! * [`quorum_split_all`] / [`quorum_split_transition`] — replace an exact
//!   quorum transition by one copy per possible quorum of senders
//!   (Section III-C, Definition 3);
//! * [`reply_split_all`] / [`reply_split_transition`] — the same split for
//!   *reply transitions* (Definition 4), which additionally restricts whom
//!   the split copies can enable (Section III-D);
//! * [`combined_split`] — both, corresponding to the "combined-split" column
//!   of Table II. [`SplitStrategy`] enumerates all four table columns for
//!   the experiment harness.
//!
//! In the paper the split models were written by hand ("the current version
//! of MP-Basset does not support the automation of transition refinement");
//! here the splits are mechanical, and [`check_refinement`] /
//! [`assert_refinement`] verify Theorem 2 on concrete instances by comparing
//! the explicit state graphs:
//!
//! ```
//! use mp_model::{codec, Message, Outcome, ProcessId, ProtocolSpec, QuorumSpec, TransitionSpec};
//! use mp_refine::{assert_refinement, quorum_split_all};
//!
//! #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
//! struct Vote;
//! codec!(struct Vote);
//! impl Message for Vote {
//!     fn kind(&self) -> &'static str { "VOTE" }
//! }
//!
//! // Three voters, one collector waiting for an exact quorum of 2.
//! let mut builder = ProtocolSpec::<u8, Vote>::builder("collect")
//!     .process("collector", 0u8)
//!     .transition(
//!         TransitionSpec::builder("VOTE", ProcessId(0))
//!             .quorum_input("VOTE", QuorumSpec::Exact(2))
//!             .effect(|_, _| Outcome::new(1))
//!             .build(),
//!     );
//! for i in 1..=3 {
//!     builder = builder.process(format!("v{i}"), 0u8).transition(
//!         TransitionSpec::builder(format!("cast{i}"), ProcessId(i))
//!             .internal()
//!             .guard(|l, _| *l == 0)
//!             .sends(&["VOTE"])
//!             .effect(|_, _| Outcome::new(1).send(ProcessId(0), Vote))
//!             .build(),
//!     );
//! }
//! let spec = builder.build().unwrap();
//!
//! // One copy of the quorum transition per 2-element sender set: C(3,2) = 3.
//! let split = quorum_split_all(&spec).unwrap();
//! assert_eq!(split.num_transitions(), spec.num_transitions() + 2);
//! // Theorem 2: the split generates the same state graph.
//! assert_refinement(&spec, &split, 100_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod combined;
pub mod quorum_split;
pub mod reply_split;
pub mod validate;

pub use analysis::{candidate_senders, is_reply_transition, may_send_kind_to};
pub use combined::{combined_split, SplitStrategy};
pub use quorum_split::{exact_quorum_size, quorum_split_all, quorum_split_transition};
pub use reply_split::{reply_split_all, reply_split_transition};
pub use validate::{assert_refinement, check_refinement, RefinementCheck};
