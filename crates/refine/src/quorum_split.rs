//! Quorum-split refinement (paper, Section III-C, Definition 3).
//!
//! An *exact* quorum transition `t` with threshold `q_t` is replaced by one
//! transition per possible quorum: for every set `Q_k` of `q_t` processes
//! that could send to `t`, a copy `t_k` is created that behaves exactly like
//! `t` but may only consume messages whose senders are exactly `Q_k`. By
//! Theorem 2 the refined protocol generates the same state graph; the gain is
//! that the static POR sees, for each `t_k`, a much smaller set of
//! transitions that can enable it or depend on it.

use std::collections::BTreeSet;

use mp_model::{
    InputSpec, LocalState, Message, ModelError, ProcessId, ProtocolSpec, QuorumSpec, TransitionSpec,
};

use crate::candidate_senders;

/// Splits a single exact-quorum transition (identified by name) into one
/// transition per possible quorum of senders.
///
/// # Errors
///
/// Returns an error if no transition has that name, the transition is not an
/// exact quorum transition, or the resulting protocol fails validation.
pub fn quorum_split_transition<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    transition_name: &str,
) -> Result<ProtocolSpec<S, M>, ModelError> {
    let Some(target_id) = spec.transition_by_name(transition_name) else {
        return Err(ModelError::Validation(format!(
            "no transition named `{transition_name}`"
        )));
    };
    let target = spec.transition(target_id);
    let Some(quorum_size) = exact_quorum_size(target) else {
        return Err(ModelError::Validation(format!(
            "transition `{transition_name}` is not an exact quorum transition"
        )));
    };

    let senders = candidate_senders(spec, target_id);
    if senders.len() < quorum_size {
        return Err(ModelError::InfeasibleQuorum {
            transition: transition_name.to_string(),
            detail: format!(
                "quorum of {quorum_size} cannot be formed from {} candidate senders",
                senders.len()
            ),
        });
    }

    let mut new_transitions = Vec::with_capacity(spec.num_transitions() + 8);
    for (id, t) in spec.transitions() {
        if id == target_id {
            for quorum in subsets_of_size(&senders, quorum_size) {
                let suffix: Vec<String> = quorum.iter().map(|p| p.index().to_string()).collect();
                let name = format!("{}__{}", t.name(), suffix.join("_"));
                new_transitions.push(t.restricted_copy(name, quorum));
            }
        } else {
            new_transitions.push(t.clone());
        }
    }
    spec.with_transitions(new_transitions)
        .map(|p| p.renamed(format!("{}+qsplit({transition_name})", spec.name())))
}

/// Splits *every* exact quorum transition with threshold at least two that is
/// not a reply transition — the paper's "quorum-split" table column, which
/// splits "only non-reply quorum transitions".
///
/// Transitions that already carry a sender restriction (i.e. have been split
/// before) are left untouched.
pub fn quorum_split_all<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
) -> Result<ProtocolSpec<S, M>, ModelError> {
    let targets: Vec<String> = spec
        .transitions()
        .filter(|(id, t)| {
            t.allowed_senders().is_none()
                && !t.annotations().is_reply
                && exact_quorum_size(t).map(|q| q >= 2).unwrap_or(false)
                && candidate_senders(spec, *id).len() > exact_quorum_size(t).unwrap_or(usize::MAX)
        })
        .map(|(_, t)| t.name().to_string())
        .collect();
    let mut current = spec.clone();
    for name in targets {
        current = quorum_split_transition(&current, &name)?;
    }
    Ok(current.renamed(format!("{}+quorum-split", spec.name())))
}

/// Returns the exact quorum size of a transition if it is an exact quorum
/// transition in the sense of Definition 2 (quorum inputs with a fixed size;
/// single-message transitions count with size one).
pub fn exact_quorum_size<S: LocalState, M: Message>(t: &TransitionSpec<S, M>) -> Option<usize> {
    match t.input() {
        InputSpec::Internal => None,
        InputSpec::Single { .. } => Some(1),
        InputSpec::Quorum { quorum, .. } => match quorum {
            QuorumSpec::Exact(q) => Some(*q),
            _ => None,
        },
    }
}

/// Enumerates all subsets of `items` with exactly `size` elements.
pub fn subsets_of_size(items: &BTreeSet<ProcessId>, size: usize) -> Vec<BTreeSet<ProcessId>> {
    let items: Vec<ProcessId> = items.iter().copied().collect();
    let mut out = Vec::new();
    let mut current = Vec::new();
    subsets_rec(&items, size, 0, &mut current, &mut out);
    out
}

fn subsets_rec(
    items: &[ProcessId],
    size: usize,
    start: usize,
    current: &mut Vec<ProcessId>,
    out: &mut Vec<BTreeSet<ProcessId>>,
) {
    if current.len() == size {
        out.push(current.iter().copied().collect());
        return;
    }
    let remaining = size - current.len();
    for i in start..items.len() {
        if items.len() - i < remaining {
            break;
        }
        current.push(items[i]);
        subsets_rec(items, size, i + 1, current, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Outcome, TransitionId};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Vote(u8),
    }
    mp_model::codec!(enum Msg { 0 = Vote(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            "VOTE"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// A collector that needs votes from 2 of 3 voters; voters vote once.
    fn collector() -> ProtocolSpec<u8, Msg> {
        let mut b = ProtocolSpec::builder("collector").process("collector", 0u8);
        for i in 1..=3 {
            b = b.process(format!("voter{i}"), 0u8);
        }
        for i in 1..=3usize {
            b = b.transition(
                TransitionSpec::builder(format!("VOTE_{i}"), p(i))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["VOTE"])
                    .sends_to([p(0)])
                    .effect(move |_, _| Outcome::new(1).send(p(0), Msg::Vote(i as u8)))
                    .build(),
            );
        }
        b.transition(
            TransitionSpec::builder("COLLECT", p(0))
                .quorum_input("VOTE", QuorumSpec::Exact(2))
                .sends_nothing()
                .effect(|_, _| Outcome::new(1))
                .build(),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn subsets_enumeration_counts() {
        let set: BTreeSet<ProcessId> = [p(1), p(2), p(3), p(4)].into_iter().collect();
        assert_eq!(subsets_of_size(&set, 2).len(), 6);
        assert_eq!(subsets_of_size(&set, 4).len(), 1);
        assert_eq!(subsets_of_size(&set, 5).len(), 0);
        assert_eq!(subsets_of_size(&set, 0).len(), 1);
    }

    #[test]
    fn split_replaces_one_transition_with_binomial_many() {
        let spec = collector();
        assert_eq!(spec.num_transitions(), 4);
        let split = quorum_split_transition(&spec, "COLLECT").unwrap();
        // COLLECT is replaced by C(3,2) = 3 restricted copies.
        assert_eq!(split.num_transitions(), 3 + 3);
        let names = split.transition_names().join(",");
        assert!(names.contains("COLLECT__1_2"));
        assert!(names.contains("COLLECT__1_3"));
        assert!(names.contains("COLLECT__2_3"));
    }

    #[test]
    fn split_copies_are_sender_restricted() {
        let spec = collector();
        let split = quorum_split_transition(&spec, "COLLECT").unwrap();
        let id = split.transition_by_name("COLLECT__1_2").unwrap();
        let t = split.transition(id);
        assert!(t.may_receive_from(p(1)));
        assert!(t.may_receive_from(p(2)));
        assert!(!t.may_receive_from(p(3)));
    }

    #[test]
    fn splitting_unknown_transition_fails() {
        let spec = collector();
        assert!(quorum_split_transition(&spec, "NOPE").is_err());
    }

    #[test]
    fn splitting_non_quorum_transition_fails() {
        let spec = collector();
        let err = quorum_split_transition(&spec, "VOTE_1").unwrap_err();
        assert!(matches!(err, ModelError::Validation(_)));
    }

    #[test]
    fn quorum_split_all_splits_only_eligible_transitions() {
        let spec = collector();
        let split = quorum_split_all(&spec).unwrap();
        assert_eq!(split.num_transitions(), 6);
        assert!(split.name().contains("quorum-split"));
        // Idempotent: already-restricted copies are not split again.
        let again = quorum_split_all(&split).unwrap();
        assert_eq!(again.num_transitions(), 6);
    }

    #[test]
    fn exact_quorum_size_helper() {
        let spec = collector();
        assert_eq!(exact_quorum_size(spec.transition(TransitionId(3))), Some(2));
        assert_eq!(exact_quorum_size(spec.transition(TransitionId(0))), None);
    }
}
