//! Reply-split refinement (paper, Section III-D).
//!
//! A *reply transition* only sends messages back to the senders of the
//! messages it consumed (Definition 4) — e.g. an acceptor answering a
//! proposer's `READ` with a `READ_REPL`. Reply-split is the quorum-split of
//! reply transitions: one copy per possible communication partner (set).
//! The extra benefit over a plain quorum-split is that the split copy can
//! also only *enable* transitions of its peers, which tightens the
//! can-enable relation used by static POR even further.

use mp_model::{LocalState, Message, ModelError, ProtocolSpec};

use crate::{
    candidate_senders, exact_quorum_size, is_reply_transition, quorum_split::subsets_of_size,
};

/// Splits a single reply transition (identified by name) into one copy per
/// possible set of communication partners.
///
/// # Errors
///
/// Returns an error if no transition has that name, the transition is not a
/// reply transition with an exact quorum size, or the resulting protocol
/// fails validation.
pub fn reply_split_transition<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    transition_name: &str,
) -> Result<ProtocolSpec<S, M>, ModelError> {
    let Some(target_id) = spec.transition_by_name(transition_name) else {
        return Err(ModelError::Validation(format!(
            "no transition named `{transition_name}`"
        )));
    };
    let target = spec.transition(target_id);
    if !is_reply_transition(target) {
        return Err(ModelError::Validation(format!(
            "transition `{transition_name}` is not annotated as a reply transition"
        )));
    }
    let Some(quorum_size) = exact_quorum_size(target) else {
        return Err(ModelError::Validation(format!(
            "reply transition `{transition_name}` does not have an exact quorum size"
        )));
    };

    let peers = candidate_senders(spec, target_id);
    if peers.len() < quorum_size {
        return Err(ModelError::InfeasibleQuorum {
            transition: transition_name.to_string(),
            detail: format!(
                "reply quorum of {quorum_size} cannot be formed from {} candidate peers",
                peers.len()
            ),
        });
    }

    let mut new_transitions = Vec::with_capacity(spec.num_transitions() + 4);
    for (id, t) in spec.transitions() {
        if id == target_id {
            for peer_set in subsets_of_size(&peers, quorum_size) {
                let suffix: Vec<String> = peer_set.iter().map(|p| p.index().to_string()).collect();
                let name = format!("{}_{}", t.name(), suffix.join("_"));
                new_transitions.push(t.restricted_copy(name, peer_set));
            }
        } else {
            new_transitions.push(t.clone());
        }
    }
    spec.with_transitions(new_transitions)
        .map(|p| p.renamed(format!("{}+rsplit({transition_name})", spec.name())))
}

/// Splits every unrestricted reply transition of the protocol that has more
/// than one candidate partner — the paper's "reply-split" table column.
pub fn reply_split_all<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
) -> Result<ProtocolSpec<S, M>, ModelError> {
    let targets: Vec<String> = spec
        .transitions()
        .filter(|(id, t)| {
            t.allowed_senders().is_none()
                && is_reply_transition(t)
                && exact_quorum_size(t).is_some()
                && candidate_senders(spec, *id).len() > exact_quorum_size(t).unwrap_or(usize::MAX)
        })
        .map(|(_, t)| t.name().to_string())
        .collect();
    let mut current = spec.clone();
    for name in targets {
        current = reply_split_transition(&current, &name)?;
    }
    Ok(current.renamed(format!("{}+reply-split", spec.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Read(u8),
        ReadRepl(u8),
    }
    mp_model::codec!(enum Msg { 0 = Read(n), 1 = ReadRepl(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Read(_) => "READ",
                Msg::ReadRepl(_) => "READ_REPL",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Two proposers (p0, p1) send READ to one acceptor (p2); the acceptor
    /// replies to whoever asked — the reply transition of Figure 6.
    fn read_reply() -> ProtocolSpec<u8, Msg> {
        let mk_read = |name: &str, me: usize| {
            TransitionSpec::builder(name.to_string(), p(me))
                .internal()
                .guard(|l, _| *l == 0)
                .sends(&["READ"])
                .sends_to([p(2)])
                .effect(move |_, _| Outcome::new(1).send(p(2), Msg::Read(me as u8)))
                .build()
        };
        ProtocolSpec::builder("read-reply")
            .process("proposer0", 0u8)
            .process("proposer1", 0u8)
            .process("acceptor", 0u8)
            .transition(mk_read("READ_0", 0))
            .transition(mk_read("READ_1", 1))
            .transition(
                TransitionSpec::builder("READ_ACC", p(2))
                    .single_input("READ")
                    .reply()
                    .sends(&["READ_REPL"])
                    .effect(|l, m: &[mp_model::Envelope<Msg>]| {
                        Outcome::new(*l).send(m[0].sender, Msg::ReadRepl(0))
                    })
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn reply_split_creates_one_copy_per_partner() {
        let spec = read_reply();
        let split = reply_split_transition(&spec, "READ_ACC").unwrap();
        assert_eq!(split.num_transitions(), 4);
        let names = split.transition_names().join(",");
        assert!(names.contains("READ_ACC_0"));
        assert!(names.contains("READ_ACC_1"));
        assert!(
            !names.contains("READ_ACC_2"),
            "the acceptor is not its own peer"
        );
    }

    #[test]
    fn split_copies_are_restricted_to_their_peer() {
        let spec = read_reply();
        let split = reply_split_transition(&spec, "READ_ACC").unwrap();
        let id = split.transition_by_name("READ_ACC_0").unwrap();
        let t = split.transition(id);
        assert!(t.may_receive_from(p(0)));
        assert!(!t.may_receive_from(p(1)));
        // The recipients of a reply-split copy resolve to the same peer set.
        assert!(t
            .annotations()
            .recipients
            .may_send_to(p(0), t.allowed_senders()));
        assert!(!t
            .annotations()
            .recipients
            .may_send_to(p(1), t.allowed_senders()));
    }

    #[test]
    fn non_reply_transitions_are_rejected() {
        let spec = read_reply();
        let err = reply_split_transition(&spec, "READ_0").unwrap_err();
        assert!(matches!(err, ModelError::Validation(_)));
    }

    #[test]
    fn reply_split_all_is_idempotent() {
        let spec = read_reply();
        let once = reply_split_all(&spec).unwrap();
        assert_eq!(once.num_transitions(), 4);
        let twice = reply_split_all(&once).unwrap();
        assert_eq!(twice.num_transitions(), 4);
    }

    #[test]
    fn single_partner_reply_is_not_split() {
        // With a single proposer the reply transition has one candidate
        // partner and reply_split_all leaves it alone (the paper notes
        // reply-split is ineffective with a single initiator).
        let spec = ProtocolSpec::builder("single")
            .process("proposer", 0u8)
            .process("acceptor", 0u8)
            .transition(
                TransitionSpec::builder("READ_0", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["READ"])
                    .sends_to([p(1)])
                    .effect(|_, _| Outcome::new(1).send(p(1), Msg::Read(0)))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("READ_ACC", p(1))
                    .single_input("READ")
                    .reply()
                    .sends(&["READ_REPL"])
                    .effect(|l, m: &[mp_model::Envelope<Msg>]| {
                        Outcome::new(*l).send(m[0].sender, Msg::ReadRepl(0))
                    })
                    .build(),
            )
            .build()
            .unwrap();
        let split = reply_split_all(&spec).unwrap();
        assert_eq!(split.num_transitions(), 2);
    }
}
