//! Validation of transition refinement (Theorem 2).
//!
//! Definition 1 of the paper: a transition system `TS'` is a transition
//! refinement of `TS` if both generate the same state graph. Theorem 2 proves
//! that quorum-split satisfies this; this module *checks* it on concrete
//! (small) protocol instances by materialising both state graphs and
//! comparing reachable states and the transition relation Δ. It is used by
//! the test suite and by the `refinement_overhead` benchmark, and it is also
//! a useful safety net for hand-written split models.

use mp_model::{LocalState, Message, ModelError, ProtocolSpec, StateGraph};

/// The result of comparing the state graphs of an original and a refined
/// protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefinementCheck {
    /// Number of reachable states of the original protocol.
    pub original_states: usize,
    /// Number of reachable states of the refined protocol.
    pub refined_states: usize,
    /// Number of edges (state pairs) of the original protocol.
    pub original_edges: usize,
    /// Number of edges (state pairs) of the refined protocol.
    pub refined_edges: usize,
    /// `true` iff the two protocols generate the same state graph.
    pub equivalent: bool,
}

/// Builds both state graphs (up to `max_states` states each) and checks that
/// they are identical, i.e. that `refined` really is a transition refinement
/// of `original`.
///
/// # Errors
///
/// Returns an error if either state graph exceeds `max_states`.
pub fn check_refinement<S: LocalState, M: Message>(
    original: &ProtocolSpec<S, M>,
    refined: &ProtocolSpec<S, M>,
    max_states: usize,
) -> Result<RefinementCheck, ModelError> {
    let g1 = StateGraph::build(original, max_states)?;
    let g2 = StateGraph::build(refined, max_states)?;
    Ok(RefinementCheck {
        original_states: g1.num_states(),
        refined_states: g2.num_states(),
        original_edges: g1.num_edges(),
        refined_edges: g2.num_edges(),
        equivalent: g1.same_state_graph(&g2),
    })
}

/// Convenience assertion used by tests: panics with a readable message when
/// the refinement check fails.
///
/// # Panics
///
/// Panics if the state graphs differ or cannot be built within `max_states`.
pub fn assert_refinement<S: LocalState, M: Message>(
    original: &ProtocolSpec<S, M>,
    refined: &ProtocolSpec<S, M>,
    max_states: usize,
) {
    let check = check_refinement(original, refined, max_states)
        .unwrap_or_else(|e| panic!("refinement check could not build the state graphs: {e}"));
    assert!(
        check.equivalent,
        "`{}` is not a transition refinement of `{}`: {} vs {} states, {} vs {} edges",
        refined.name(),
        original.name(),
        check.refined_states,
        check.original_states,
        check.refined_edges,
        check.original_edges,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{combined_split, quorum_split_all, reply_split_all};
    use mp_model::{Kind, Outcome, ProcessId, QuorumSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Read(u8),
        ReadRepl(u8),
    }
    mp_model::codec!(enum Msg { 0 = Read(n), 1 = ReadRepl(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Read(_) => "READ",
                Msg::ReadRepl(_) => "READ_REPL",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Two proposers race to collect a quorum of replies from three
    /// acceptors — small enough to materialise, rich enough that the split
    /// actually changes the transition set.
    fn two_proposer_phase1() -> ProtocolSpec<u8, Msg> {
        let mut b = ProtocolSpec::builder("phase1-2p");
        b = b.process("proposer0", 0u8).process("proposer1", 0u8);
        for i in 2..=4 {
            b = b.process(format!("acceptor{i}"), 0u8);
        }
        for me in 0..=1usize {
            b = b.transition(
                TransitionSpec::builder(format!("READ_{me}"), p(me))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["READ"])
                    .sends_to([p(2), p(3), p(4)])
                    .effect(move |_, _| {
                        Outcome::new(1)
                            .send(p(2), Msg::Read(me as u8))
                            .send(p(3), Msg::Read(me as u8))
                            .send(p(4), Msg::Read(me as u8))
                    })
                    .build(),
            );
        }
        for acc in 2..=4usize {
            b = b.transition(
                TransitionSpec::builder(format!("READ_ACC_{acc}"), p(acc))
                    .single_input("READ")
                    .reply()
                    .sends(&["READ_REPL"])
                    .effect(move |l, m: &[mp_model::Envelope<Msg>]| {
                        Outcome::new(*l).send(m[0].sender, Msg::ReadRepl(acc as u8))
                    })
                    .build(),
            );
        }
        for me in 0..=1usize {
            b = b.transition(
                TransitionSpec::builder(format!("READ_REPL_{me}"), p(me))
                    .quorum_input("READ_REPL", QuorumSpec::Exact(2))
                    .guard(|l, _| *l == 1)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(2))
                    .build(),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn quorum_split_is_a_refinement() {
        let spec = two_proposer_phase1();
        let split = quorum_split_all(&spec).unwrap();
        assert!(split.num_transitions() > spec.num_transitions());
        assert_refinement(&spec, &split, 200_000);
    }

    #[test]
    fn reply_split_is_a_refinement() {
        let spec = two_proposer_phase1();
        let split = reply_split_all(&spec).unwrap();
        assert!(split.num_transitions() > spec.num_transitions());
        assert_refinement(&spec, &split, 200_000);
    }

    #[test]
    fn combined_split_is_a_refinement() {
        let spec = two_proposer_phase1();
        let split = combined_split(&spec).unwrap();
        assert_refinement(&spec, &split, 200_000);
    }

    #[test]
    fn check_reports_numbers() {
        let spec = two_proposer_phase1();
        let split = quorum_split_all(&spec).unwrap();
        let check = check_refinement(&spec, &split, 200_000).unwrap();
        assert!(check.equivalent);
        assert_eq!(check.original_states, check.refined_states);
        assert_eq!(check.original_edges, check.refined_edges);
        assert!(check.original_states > 1);
    }

    #[test]
    fn a_genuinely_different_protocol_is_not_a_refinement() {
        let spec = two_proposer_phase1();
        // Remove one acceptor's reply: the state graph changes.
        let fewer: Vec<_> = spec
            .transitions()
            .filter(|(_, t)| t.name() != "READ_ACC_4")
            .map(|(_, t)| t.clone())
            .collect();
        let broken = spec.with_transitions(fewer).unwrap();
        let check = check_refinement(&spec, &broken, 200_000).unwrap();
        assert!(!check.equivalent);
    }

    #[test]
    fn state_limit_is_propagated() {
        let spec = two_proposer_phase1();
        let split = quorum_split_all(&spec).unwrap();
        assert!(check_refinement(&spec, &split, 3).is_err());
    }
}
