//! The backend trait and its statistics record.

use std::fmt;

/// A snapshot of one backend's counters.
///
/// All backends use the unified accounting scheme: every membership query —
/// an [`StateStoreBackend::insert`] *or* a [`StateStoreBackend::contains`] —
/// counts as a **hit** when the key was already present and as a **miss**
/// otherwise. `hits + misses` therefore equals the total number of queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct entries currently stored.
    pub entries: usize,
    /// Queries that found the key already present.
    pub hits: usize,
    /// Queries that did not find the key.
    pub misses: usize,
    /// Approximate heap footprint of the stored entries, in bytes. This is
    /// the number the engines report as "peak state-storage bytes"; it
    /// covers the store's own tables, not frontier queues or DFS stacks.
    pub approx_bytes: usize,
    /// Cumulative bytes of visited-set data written to disk as sorted runs
    /// (0 for the in-memory backends).
    pub spilled_bytes: usize,
    /// Cumulative bytes written while merging sorted runs during
    /// [`StateStoreBackend::maintain`] (0 for the in-memory backends).
    pub merge_bytes: usize,
}

impl StoreStats {
    /// Total number of membership queries answered.
    pub fn queries(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of queries that were hits (0 if no queries were made).
    pub fn hit_rate(&self) -> f64 {
        if self.queries() == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries() as f64
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries (~{} KiB), {} hits / {} queries",
            self.entries,
            self.approx_bytes / 1024,
            self.hits,
            self.queries()
        )
    }
}

/// A visited-state set that search engines insert into and query.
///
/// All methods take `&self`: backends use interior mutability so that the
/// parallel engine can share one store across worker threads (all provided
/// backends are `Send + Sync`; the sequential engines simply pay one
/// uncontended lock per operation on the exact backend).
pub trait StateStoreBackend<K> {
    /// Inserts a key; returns `true` if it was new. Counts a hit when the
    /// key was already present, a miss otherwise.
    fn insert(&self, key: K) -> bool;

    /// Like [`StateStoreBackend::insert`], but borrows the key and only
    /// clones it when it is actually new — the fast path for search
    /// engines, where most generated edges lead to already-visited states
    /// and protocol-state keys are expensive to clone. The fingerprint
    /// backend never clones at all. Backends override the default (which
    /// clones unconditionally) when they can do better.
    fn insert_ref(&self, key: &K) -> bool
    where
        K: Clone,
    {
        self.insert(key.clone())
    }

    /// Returns `true` if the key is present. Counts a hit when found, a
    /// miss otherwise — the same accounting as [`StateStoreBackend::insert`].
    fn contains(&self, key: &K) -> bool;

    /// Number of distinct entries stored.
    fn len(&self) -> usize;

    /// Returns `true` if nothing has been stored yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    fn stats(&self) -> StoreStats;

    /// Short backend name ("exact", "sharded", "fingerprint", "runs").
    fn name(&self) -> &'static str;

    /// Gives the backend a chance to reorganise itself at a quiescent point
    /// — the BFS engines call this at level boundaries. The external-memory
    /// backend merges its sorted runs here so lookups stay cheap; the
    /// in-memory backends have nothing to do, hence the no-op default.
    fn maintain(&self) {}
}

/// Approximate byte footprint of a hash table with `capacity` slots of
/// `entry_size`-byte entries (hashbrown stores one control byte per slot).
pub(crate) fn table_bytes(capacity: usize, entry_size: usize) -> usize {
    capacity * (entry_size + 1) + std::mem::size_of::<std::collections::HashSet<u64>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accessors() {
        let s = StoreStats {
            entries: 10,
            hits: 3,
            misses: 9,
            approx_bytes: 4096,
            ..Default::default()
        };
        assert_eq!(s.queries(), 12);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
        assert!(s.to_string().contains("10 entries"));
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
    }
}
