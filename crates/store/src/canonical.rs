//! Canonical-key insertion: a backend-agnostic wrapper that maps every key
//! to a representative before it reaches the underlying store.
//!
//! This is the storage half of symmetry (orbit) reduction: the search
//! engines of `mp-checker` keep exploring *concrete* states but only one
//! **canonical representative per orbit** is ever fingerprinted, whichever
//! backend is selected. The wrapper is always present in the engines'
//! store path — with no mapper installed it is a zero-cost passthrough, so
//! symmetry-off runs are byte-identical to the pre-wrapper behaviour.

use std::hash::Hash;
use std::sync::Arc;

use crate::{StateStoreBackend, StoreConfig, StoreImpl, StoreStats};

/// A key-canonicalization function: maps a key to its orbit representative.
/// Must be idempotent and consistent (two keys of the same orbit map to the
/// same representative) — `mp-symmetry` provides such a function for any
/// validated symmetry group.
pub type KeyMapper<K> = Arc<dyn Fn(&K) -> K + Send + Sync>;

/// The reporting label of a backend whose keys are canonical orbit
/// representatives. Single source of the `+canon` suffix convention — used
/// by [`CanonicalStore::name`] and by the engines that pre-canonicalize
/// their keys and run the wrapper in passthrough mode.
pub fn canonical_label(name: &'static str) -> &'static str {
    match name {
        "exact" => "exact+canon",
        "sharded" => "sharded+canon",
        "fingerprint" => "fingerprint+canon",
        "runs" => "runs+canon",
        _ => "canonical",
    }
}

/// Any [`StoreConfig`]-built backend, optionally behind a canonical-key
/// mapper. See the module docs.
pub struct CanonicalStore<K> {
    inner: StoreImpl<K>,
    mapper: Option<KeyMapper<K>>,
}

impl<K: Eq + Hash> CanonicalStore<K> {
    /// Wraps `inner`; `mapper: None` is a pure passthrough.
    pub fn new(inner: StoreImpl<K>, mapper: Option<KeyMapper<K>>) -> Self {
        CanonicalStore { inner, mapper }
    }

    /// Returns `true` if a canonical-key mapper is installed.
    pub fn is_canonical(&self) -> bool {
        self.mapper.is_some()
    }

    /// Approximate heap bytes of the underlying table — the
    /// [`StoreStats::approx_bytes`] figure without a full stats copy. Feeds
    /// the `store_bytes` (and, on symmetric runs, `canonical_cache_bytes`)
    /// memory gauges.
    pub fn approx_bytes(&self) -> usize {
        self.inner.stats().approx_bytes
    }
}

impl StoreConfig {
    /// Builds the backend for key type `K` behind the canonical-key wrapper
    /// (`mapper: None` = passthrough). This is the constructor the search
    /// engines of `mp-checker` use, so canonical-key insertion is available
    /// behind every backend.
    pub fn build_canonical<K: Eq + Hash>(&self, mapper: Option<KeyMapper<K>>) -> CanonicalStore<K> {
        CanonicalStore::new(self.build(), mapper)
    }
}

impl<K: Eq + Hash + Clone> StateStoreBackend<K> for CanonicalStore<K> {
    fn insert(&self, key: K) -> bool {
        match &self.mapper {
            Some(mapper) => self.inner.insert(mapper(&key)),
            None => self.inner.insert(key),
        }
    }

    fn insert_ref(&self, key: &K) -> bool {
        match &self.mapper {
            Some(mapper) => self.inner.insert(mapper(key)),
            None => self.inner.insert_ref(key),
        }
    }

    fn contains(&self, key: &K) -> bool {
        match &self.mapper {
            Some(mapper) => self.inner.contains(&mapper(key)),
            None => self.inner.contains(key),
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn maintain(&self) {
        self.inner.maintain()
    }

    fn name(&self) -> &'static str {
        match &self.mapper {
            None => self.inner.name(),
            Some(_) => canonical_label(self.inner.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Orbit representative of an i64 key: its absolute value (the "group"
    /// is negation).
    fn abs_mapper() -> KeyMapper<i64> {
        Arc::new(|k: &i64| k.wrapping_abs())
    }

    #[test]
    fn passthrough_matches_inner_backend() {
        for config in [
            StoreConfig::Exact,
            StoreConfig::sharded(),
            StoreConfig::fingerprint(64),
        ] {
            let plain = config.build::<i64>();
            let wrapped = config.build_canonical::<i64>(None);
            for k in [-3i64, 5, -3, 5, 7] {
                assert_eq!(plain.insert(k), wrapped.insert(k), "{config}");
            }
            assert_eq!(plain.len(), wrapped.len());
            assert_eq!(plain.stats().hits, wrapped.stats().hits);
            assert!(!wrapped.is_canonical());
            assert_eq!(wrapped.name(), plain.name());
        }
    }

    #[test]
    fn canonical_keys_collapse_orbits_on_every_backend() {
        for config in [
            StoreConfig::Exact,
            StoreConfig::sharded(),
            StoreConfig::fingerprint(64),
        ] {
            let store = config.build_canonical(Some(abs_mapper()));
            assert!(store.is_canonical());
            assert!(store.insert(-3), "{config}: first orbit member is new");
            assert!(
                !store.insert(3),
                "{config}: the symmetric sibling is a store hit"
            );
            assert!(store.contains(&-3));
            assert!(store.contains(&3));
            assert!(!store.contains(&4));
            assert_eq!(store.len(), 1, "{config}: one representative per orbit");
            assert!(store.name().ends_with("+canon"), "{config}");
        }
    }

    #[test]
    fn insert_ref_canonicalizes_too() {
        let store = StoreConfig::Exact.build_canonical(Some(abs_mapper()));
        assert!(store.insert_ref(&-9));
        assert!(!store.insert_ref(&9));
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 1);
    }
}
