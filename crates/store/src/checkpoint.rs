//! Checkpoint/resume: level-granular snapshots of a BFS run's persistent
//! state, behind a versioned manifest.
//!
//! A breadth-first run has a natural quiescent point — the level boundary —
//! at which its whole exploration state is three byte streams: the frontier
//! entries of the level just completed, the parent records pushed so far,
//! and the visited set (which the engines rebuild from the level files, so
//! it needs no file of its own). [`CheckpointWriter`] tees those streams
//! into a checkpoint directory as the engine runs and, at each boundary,
//! atomically publishes a [`Manifest`] naming what is valid:
//!
//! * `level_<k>.front` — one file per BFS level, holding the level's
//!   frontier entries as `varint(len) payload` records (the payload bytes
//!   are the engine's own entry encoding; this module never interprets
//!   them);
//! * `parents.log` — one append-only file of parent records in push order,
//!   framed the same way;
//! * `MANIFEST` — a line-oriented text file carrying the format version,
//!   the protocol's structure fingerprint, the engine/config identity
//!   strings, the last completed level, the engine's counters, and a
//!   `(items, bytes, FNV-64)` record per data file. It is written to a
//!   temporary file, fsynced and renamed, so a crash never leaves a
//!   half-written manifest — resume either sees the previous complete
//!   checkpoint or this one.
//!
//! On resume, [`Manifest::load`] + [`Manifest::validate`] refuse manifests
//! of a different format version, protocol, engine or configuration, and
//! [`Manifest::read_level`]/[`Manifest::read_parents`] verify length and
//! checksum before handing the records back. `docs/ON_DISK_FORMATS.md` in
//! the repository specifies every byte of the formats and the versioning
//! policy.
//!
//! ```
//! use mp_store::{manifest_exists, CheckpointWriter, Manifest};
//!
//! let dir = std::env::temp_dir().join(format!("ckpt-doc-{}", std::process::id()));
//! let mut ckpt = CheckpointWriter::new(&dir).unwrap();
//!
//! // Level 0 is the root; every level seals before the next begins.
//! ckpt.begin_level(0).unwrap();
//! ckpt.push_entry(b"root-entry").unwrap();
//! ckpt.push_parent(b"no-parent").unwrap();
//! ckpt.seal_level().unwrap();
//! ckpt.commit(0, 42, "stateful-bfs", "store=exact", &[("states", 1)]).unwrap();
//!
//! assert!(manifest_exists(&dir));
//! let manifest = Manifest::load(&dir).unwrap();
//! assert!(manifest.validate(42, "stateful-bfs", "store=exact").is_ok());
//! assert!(manifest.validate(43, "stateful-bfs", "store=exact").is_err());
//! assert_eq!(manifest.level, 0);
//! assert_eq!(manifest.counter("states"), 1);
//! assert_eq!(manifest.read_level(&dir, 0).unwrap(), vec![b"root-entry".to_vec()]);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use mp_model::{read_varint, write_varint, Fnv64};

/// The manifest format version this build writes and accepts. Bump it on
/// any incompatible change to the manifest or data-file layouts; resume
/// refuses other versions (see `docs/ON_DISK_FORMATS.md` for the policy).
pub const CHECKPOINT_VERSION: u32 = 1;

const MANIFEST_NAME: &str = "MANIFEST";
const PARENTS_NAME: &str = "parents.log";

fn level_name(level: usize) -> String {
    format!("level_{level}.front")
}

/// Where (and how often) a run should checkpoint. Carried by
/// `CheckerConfig` in `mp-checker`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// The checkpoint directory (created if missing). One directory holds
    /// exactly one run's checkpoint.
    pub dir: PathBuf,
    /// Commit the manifest every N completed levels (level 0 always
    /// commits, so a fresh run is resumable as soon as it has a root).
    pub every_levels: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` at every level boundary.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_levels: 1,
        }
    }

    /// Commit the manifest only every `n` levels (minimum 1; the data
    /// files are still teed continuously, only the publish is batched).
    pub fn with_every_levels(mut self, n: usize) -> Self {
        self.every_levels = n.max(1);
        self
    }
}

/// Why a checkpoint could not be written, loaded or trusted.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem failed.
    Io(io::Error),
    /// A manifest or data file exists but does not parse or does not match
    /// its recorded length/checksum.
    Corrupt(String),
    /// The manifest is well-formed but belongs to a different format
    /// version, protocol, engine or configuration.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The manifest's record of one data file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// File name within the checkpoint directory.
    pub name: String,
    /// Number of framed records in the valid prefix.
    pub items: usize,
    /// Byte length of the valid prefix.
    pub bytes: u64,
    /// FNV-64 checksum of the valid prefix.
    pub fnv: u64,
}

/// A parsed checkpoint manifest. See the module docs for the file layout
/// and [`Manifest::load`] / [`Manifest::validate`] for the resume contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The protocol's structure fingerprint
    /// (`mp_model::ProtocolSpec::structure_fingerprint`).
    pub spec_fingerprint: u64,
    /// The engine identity string (the strategy label).
    pub engine: String,
    /// The configuration identity string the engine chose to pin.
    pub config: String,
    /// Last completed BFS level; `level_<k>.front` holds its frontier.
    pub level: usize,
    /// Engine counters at the commit point, in emission order.
    pub counters: Vec<(String, u64)>,
    /// Per-file validity records: `level_0.front ..= level_<k>.front`,
    /// then `parents.log`.
    pub files: Vec<FileMeta>,
}

/// Returns `true` if `dir` holds a committed checkpoint manifest — the
/// engines' cue to resume instead of starting fresh.
pub fn manifest_exists(dir: &Path) -> bool {
    dir.join(MANIFEST_NAME).is_file()
}

impl Manifest {
    /// Loads and parses `dir/MANIFEST`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read,
    /// [`CheckpointError::Mismatch`] on a different format version, and
    /// [`CheckpointError::Corrupt`] on any syntax violation.
    pub fn load(dir: &Path) -> Result<Manifest, CheckpointError> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_NAME))?;
        let corrupt = |msg: String| CheckpointError::Corrupt(msg);
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| corrupt("empty manifest".to_string()))?;
        match header.strip_prefix("mp-basset-checkpoint v") {
            Some(v) => {
                let version: u32 = v
                    .parse()
                    .map_err(|_| corrupt(format!("bad version {v:?}")))?;
                if version != CHECKPOINT_VERSION {
                    return Err(CheckpointError::Mismatch(format!(
                        "manifest version {version}, this build reads {CHECKPOINT_VERSION}"
                    )));
                }
            }
            None => return Err(corrupt(format!("bad header {header:?}"))),
        }
        let mut spec_fingerprint = None;
        let mut engine = None;
        let mut config = None;
        let mut level = None;
        let mut counters = Vec::new();
        let mut files = Vec::new();
        let mut ended = false;
        for line in lines {
            if ended {
                return Err(corrupt(format!("data after end: {line:?}")));
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "spec_fingerprint" => {
                    spec_fingerprint = Some(
                        rest.parse::<u64>()
                            .map_err(|_| corrupt(format!("bad spec_fingerprint {rest:?}")))?,
                    );
                }
                "engine" => engine = Some(rest.to_string()),
                "config" => config = Some(rest.to_string()),
                "level" => {
                    level = Some(
                        rest.parse::<usize>()
                            .map_err(|_| corrupt(format!("bad level {rest:?}")))?,
                    );
                }
                "counter" => {
                    let (name, value) = rest
                        .split_once(' ')
                        .ok_or_else(|| corrupt(format!("bad counter line {rest:?}")))?;
                    let value = value
                        .parse::<u64>()
                        .map_err(|_| corrupt(format!("bad counter value {value:?}")))?;
                    counters.push((name.to_string(), value));
                }
                "file" => {
                    let fields: Vec<&str> = rest.split(' ').collect();
                    if fields.len() != 4 {
                        return Err(corrupt(format!("bad file line {rest:?}")));
                    }
                    files.push(FileMeta {
                        name: fields[0].to_string(),
                        items: fields[1]
                            .parse()
                            .map_err(|_| corrupt(format!("bad file items {rest:?}")))?,
                        bytes: fields[2]
                            .parse()
                            .map_err(|_| corrupt(format!("bad file bytes {rest:?}")))?,
                        fnv: u64::from_str_radix(fields[3], 16)
                            .map_err(|_| corrupt(format!("bad file checksum {rest:?}")))?,
                    });
                }
                "end" => ended = true,
                other => return Err(corrupt(format!("unknown manifest key {other:?}"))),
            }
        }
        if !ended {
            return Err(corrupt("missing end marker (truncated write)".to_string()));
        }
        let manifest = Manifest {
            spec_fingerprint: spec_fingerprint
                .ok_or_else(|| corrupt("missing spec_fingerprint".to_string()))?,
            engine: engine.ok_or_else(|| corrupt("missing engine".to_string()))?,
            config: config.ok_or_else(|| corrupt("missing config".to_string()))?,
            level: level.ok_or_else(|| corrupt("missing level".to_string()))?,
            counters,
            files,
        };
        for k in 0..=manifest.level {
            if manifest.file(&level_name(k)).is_none() {
                return Err(corrupt(format!("missing file record for level {k}")));
            }
        }
        if manifest.file(PARENTS_NAME).is_none() {
            return Err(corrupt(format!("missing file record for {PARENTS_NAME}")));
        }
        Ok(manifest)
    }

    /// Checks that this manifest belongs to the run being resumed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first field that differs —
    /// resuming a Paxos sweep from a multicast checkpoint, or a symmetric
    /// run from a plain one, silently explores the wrong state space, so
    /// the engines treat this as fatal.
    pub fn validate(
        &self,
        spec_fingerprint: u64,
        engine: &str,
        config: &str,
    ) -> Result<(), CheckpointError> {
        if self.spec_fingerprint != spec_fingerprint {
            return Err(CheckpointError::Mismatch(format!(
                "spec fingerprint {} in manifest, {} in this run — different protocol model",
                self.spec_fingerprint, spec_fingerprint
            )));
        }
        if self.engine != engine {
            return Err(CheckpointError::Mismatch(format!(
                "engine {:?} in manifest, {:?} in this run",
                self.engine, engine
            )));
        }
        if self.config != config {
            return Err(CheckpointError::Mismatch(format!(
                "config {:?} in manifest, {:?} in this run",
                self.config, config
            )));
        }
        Ok(())
    }

    /// The manifest's record for `name`, if present.
    pub fn file(&self, name: &str) -> Option<&FileMeta> {
        self.files.iter().find(|f| f.name == name)
    }

    /// The named counter's committed value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Reads back the frontier entries of `level`, verifying the file's
    /// recorded length and checksum first.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the file is shorter than recorded,
    /// fails its checksum, or holds malformed framing.
    pub fn read_level(&self, dir: &Path, level: usize) -> Result<Vec<Vec<u8>>, CheckpointError> {
        let name = level_name(level);
        let meta = self
            .file(&name)
            .ok_or_else(|| CheckpointError::Corrupt(format!("no manifest record for {name}")))?;
        read_records(&dir.join(&name), meta)
    }

    /// Reads back every committed parent record, in push order, verifying
    /// length and checksum first.
    ///
    /// # Errors
    ///
    /// As [`Manifest::read_level`].
    pub fn read_parents(&self, dir: &Path) -> Result<Vec<Vec<u8>>, CheckpointError> {
        let meta = self.file(PARENTS_NAME).ok_or_else(|| {
            CheckpointError::Corrupt(format!("no manifest record for {PARENTS_NAME}"))
        })?;
        read_records(&dir.join(PARENTS_NAME), meta)
    }
}

/// Reads the valid prefix of a framed-record file, checks it against its
/// manifest record, and splits it into payloads.
fn read_records(path: &Path, meta: &FileMeta) -> Result<Vec<Vec<u8>>, CheckpointError> {
    let mut file = File::open(path)?;
    let mut raw = vec![0u8; meta.bytes as usize];
    file.read_exact(&mut raw).map_err(|e| {
        CheckpointError::Corrupt(format!(
            "{}: shorter than the {} bytes the manifest records ({e})",
            path.display(),
            meta.bytes
        ))
    })?;
    let mut hash = Fnv64::new();
    hash.write(&raw);
    if hash.finish() != meta.fnv {
        return Err(CheckpointError::Corrupt(format!(
            "{}: checksum {:016x} does not match the manifest's {:016x}",
            path.display(),
            hash.finish(),
            meta.fnv
        )));
    }
    let mut records = Vec::with_capacity(meta.items);
    let mut input = &raw[..];
    while !input.is_empty() {
        let len = read_varint(&mut input)
            .map_err(|e| CheckpointError::Corrupt(format!("{}: {e}", path.display())))?
            as usize;
        if input.len() < len {
            return Err(CheckpointError::Corrupt(format!(
                "{}: truncated record",
                path.display()
            )));
        }
        records.push(input[..len].to_vec());
        input = &input[len..];
    }
    if records.len() != meta.items {
        return Err(CheckpointError::Corrupt(format!(
            "{}: {} records, the manifest records {}",
            path.display(),
            records.len(),
            meta.items
        )));
    }
    Ok(records)
}

/// Tees a BFS run's frontier entries and parent records into a checkpoint
/// directory and commits versioned manifests at level boundaries. The
/// writer is pure-bytes: engines encode entries with their own codecs and
/// hand over the encoded payloads. See the module docs for the protocol.
#[derive(Debug)]
pub struct CheckpointWriter {
    dir: PathBuf,
    /// The open level file: `(file, hash, items, bytes, level)`.
    current: Option<(File, Fnv64, usize, u64, usize)>,
    /// Sealed level files, dense from level 0.
    sealed: Vec<FileMeta>,
    parents: File,
    parents_hash: Fnv64,
    parents_items: usize,
    parents_bytes: u64,
    scratch: Vec<u8>,
}

impl CheckpointWriter {
    /// Starts a fresh checkpoint in `dir` (created if missing; existing
    /// data files are truncated as their levels are re-reached).
    ///
    /// # Errors
    ///
    /// Any filesystem failure creating the directory or `parents.log`.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let parents = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(dir.join(PARENTS_NAME))?;
        Ok(CheckpointWriter {
            dir,
            current: None,
            sealed: Vec::new(),
            parents,
            parents_hash: Fnv64::new(),
            parents_items: 0,
            parents_bytes: 0,
            scratch: Vec::new(),
        })
    }

    /// Reopens a checkpoint to continue past `manifest.level`: truncates
    /// `parents.log` back to its committed prefix (dropping records pushed
    /// after the last commit), re-verifies that prefix's checksum, and
    /// adopts the committed level files. The next [`begin_level`] call must
    /// be for `manifest.level + 1`.
    ///
    /// [`begin_level`]: CheckpointWriter::begin_level
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the parents prefix fails its
    /// checksum, plus any filesystem failure.
    pub fn resume(dir: impl Into<PathBuf>, manifest: &Manifest) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        let meta = manifest.file(PARENTS_NAME).ok_or_else(|| {
            CheckpointError::Corrupt(format!("no manifest record for {PARENTS_NAME}"))
        })?;
        let mut parents = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(PARENTS_NAME))?;
        let mut prefix = vec![0u8; meta.bytes as usize];
        parents.read_exact(&mut prefix).map_err(|e| {
            CheckpointError::Corrupt(format!(
                "{PARENTS_NAME}: shorter than the {} bytes the manifest records ({e})",
                meta.bytes
            ))
        })?;
        let mut parents_hash = Fnv64::new();
        parents_hash.write(&prefix);
        if parents_hash.finish() != meta.fnv {
            return Err(CheckpointError::Corrupt(format!(
                "{PARENTS_NAME}: checksum {:016x} does not match the manifest's {:016x}",
                parents_hash.finish(),
                meta.fnv
            )));
        }
        parents.set_len(meta.bytes)?;
        parents.seek(SeekFrom::Start(meta.bytes))?;
        let mut sealed = Vec::with_capacity(manifest.level + 1);
        for k in 0..=manifest.level {
            let name = level_name(k);
            let file_meta = manifest
                .file(&name)
                .ok_or_else(|| {
                    CheckpointError::Corrupt(format!("missing file record for level {k}"))
                })?
                .clone();
            sealed.push(file_meta);
        }
        Ok(CheckpointWriter {
            dir,
            current: None,
            sealed,
            parents,
            parents_hash,
            parents_items: meta.items,
            parents_bytes: meta.bytes,
            scratch: Vec::new(),
        })
    }

    /// Opens (and truncates) `level_<level>.front` for the level about to
    /// be generated. Levels are dense: `level` must be the number of
    /// already-sealed levels.
    ///
    /// # Errors
    ///
    /// Any filesystem failure creating the file.
    ///
    /// # Panics
    ///
    /// If a level is still open or `level` is out of order.
    pub fn begin_level(&mut self, level: usize) -> Result<(), CheckpointError> {
        assert!(self.current.is_none(), "begin_level with an open level");
        assert_eq!(level, self.sealed.len(), "levels must be dense");
        let file = File::create(self.dir.join(level_name(level)))?;
        self.current = Some((file, Fnv64::new(), 0, 0, level));
        Ok(())
    }

    /// Tees one encoded frontier entry into the open level file.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    ///
    /// # Panics
    ///
    /// If no level is open.
    pub fn push_entry(&mut self, payload: &[u8]) -> Result<(), CheckpointError> {
        self.scratch.clear();
        write_varint(payload.len() as u64, &mut self.scratch);
        self.scratch.extend_from_slice(payload);
        let (file, hash, items, bytes, _) =
            self.current.as_mut().expect("push_entry without a level");
        file.write_all(&self.scratch)?;
        hash.write(&self.scratch);
        *items += 1;
        *bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Appends one encoded parent record to `parents.log`.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn push_parent(&mut self, payload: &[u8]) -> Result<(), CheckpointError> {
        self.scratch.clear();
        write_varint(payload.len() as u64, &mut self.scratch);
        self.scratch.extend_from_slice(payload);
        self.parents.write_all(&self.scratch)?;
        self.parents_hash.write(&self.scratch);
        self.parents_items += 1;
        self.parents_bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Seals the open level file: flushes it to stable storage and records
    /// its `(items, bytes, checksum)` for the next manifest.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    ///
    /// # Panics
    ///
    /// If no level is open.
    pub fn seal_level(&mut self) -> Result<(), CheckpointError> {
        let (file, hash, items, bytes, level) =
            self.current.take().expect("seal_level without a level");
        file.sync_all()?;
        self.sealed.push(FileMeta {
            name: level_name(level),
            items,
            bytes,
            fnv: hash.finish(),
        });
        Ok(())
    }

    /// Atomically publishes a manifest naming levels `0..=level` and the
    /// current parents prefix as the valid checkpoint: writes
    /// `MANIFEST.tmp`, fsyncs and renames over `MANIFEST`.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    ///
    /// # Panics
    ///
    /// If `level` has not been sealed.
    pub fn commit(
        &mut self,
        level: usize,
        spec_fingerprint: u64,
        engine: &str,
        config: &str,
        counters: &[(&str, u64)],
    ) -> Result<(), CheckpointError> {
        assert!(
            level < self.sealed.len(),
            "commit of level {level} before it was sealed"
        );
        self.parents.sync_all()?;
        let mut text = format!("mp-basset-checkpoint v{CHECKPOINT_VERSION}\n");
        text.push_str(&format!("spec_fingerprint {spec_fingerprint}\n"));
        text.push_str(&format!("engine {engine}\n"));
        text.push_str(&format!("config {config}\n"));
        text.push_str(&format!("level {level}\n"));
        for (name, value) in counters {
            text.push_str(&format!("counter {name} {value}\n"));
        }
        for meta in &self.sealed[..=level] {
            text.push_str(&format!(
                "file {} {} {} {:016x}\n",
                meta.name, meta.items, meta.bytes, meta.fnv
            ));
        }
        text.push_str(&format!(
            "file {} {} {} {:016x}\n",
            PARENTS_NAME,
            self.parents_items,
            self.parents_bytes,
            self.parents_hash.finish()
        ));
        text.push_str("end\n");
        let tmp = self.dir.join("MANIFEST.tmp");
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, self.dir.join(MANIFEST_NAME))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mp-checkpoint-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_two_levels(dir: &Path) -> CheckpointWriter {
        let mut ckpt = CheckpointWriter::new(dir).unwrap();
        ckpt.begin_level(0).unwrap();
        ckpt.push_entry(b"root").unwrap();
        ckpt.push_parent(b"p0").unwrap();
        ckpt.seal_level().unwrap();
        ckpt.commit(0, 7, "bfs", "store=exact", &[("states", 1)])
            .unwrap();
        ckpt.begin_level(1).unwrap();
        ckpt.push_entry(b"alpha").unwrap();
        ckpt.push_entry(b"beta").unwrap();
        ckpt.push_parent(b"p1").unwrap();
        ckpt.push_parent(b"p2").unwrap();
        ckpt.seal_level().unwrap();
        ckpt.commit(1, 7, "bfs", "store=exact", &[("states", 3)])
            .unwrap();
        ckpt
    }

    #[test]
    fn round_trips_levels_parents_and_counters() {
        let dir = temp_dir("roundtrip");
        let _ckpt = write_two_levels(&dir);
        assert!(manifest_exists(&dir));
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.level, 1);
        assert_eq!(manifest.counter("states"), 3);
        assert_eq!(manifest.counter("missing"), 0);
        assert_eq!(
            manifest.read_level(&dir, 0).unwrap(),
            vec![b"root".to_vec()]
        );
        assert_eq!(
            manifest.read_level(&dir, 1).unwrap(),
            vec![b"alpha".to_vec(), b"beta".to_vec()]
        );
        assert_eq!(
            manifest.read_parents(&dir).unwrap(),
            vec![b"p0".to_vec(), b"p1".to_vec(), b"p2".to_vec()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_rejects_every_identity_mismatch() {
        let dir = temp_dir("identity");
        let _ckpt = write_two_levels(&dir);
        let manifest = Manifest::load(&dir).unwrap();
        assert!(manifest.validate(7, "bfs", "store=exact").is_ok());
        for (fp, engine, config) in [
            (8, "bfs", "store=exact"),
            (7, "parallel-bfs", "store=exact"),
            (7, "bfs", "store=sharded(64)"),
        ] {
            let err = manifest.validate(fp, engine, config).unwrap_err();
            assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_bumps_and_corruption_are_refused() {
        let dir = temp_dir("corruption");
        let _ckpt = write_two_levels(&dir);
        let manifest_path = dir.join(MANIFEST_NAME);
        let good = std::fs::read_to_string(&manifest_path).unwrap();

        // A future format version is a mismatch, not a parse attempt.
        std::fs::write(
            &manifest_path,
            good.replace("checkpoint v1", "checkpoint v99"),
        )
        .unwrap();
        assert!(matches!(
            Manifest::load(&dir).unwrap_err(),
            CheckpointError::Mismatch(_)
        ));

        // A truncated manifest (no end marker) reads as corrupt — the
        // atomic rename makes this unreachable in practice, but the loader
        // must still refuse it.
        let cut = good.split("end").next().unwrap();
        std::fs::write(&manifest_path, cut).unwrap();
        assert!(matches!(
            Manifest::load(&dir).unwrap_err(),
            CheckpointError::Corrupt(_)
        ));

        // Flipped data bytes fail the checksum.
        std::fs::write(&manifest_path, &good).unwrap();
        let level1 = dir.join(level_name(1));
        let mut bytes = std::fs::read(&level1).unwrap();
        bytes[2] ^= 0xff;
        std::fs::write(&level1, bytes).unwrap();
        let manifest = Manifest::load(&dir).unwrap();
        let err = manifest.read_level(&dir, 1).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");

        // A data file shorter than recorded is also corrupt.
        std::fs::write(dir.join(level_name(1)), b"x").unwrap();
        assert!(matches!(
            manifest.read_level(&dir, 1).unwrap_err(),
            CheckpointError::Corrupt(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_uncommitted_parents_and_continues() {
        let dir = temp_dir("resume");
        let mut ckpt = write_two_levels(&dir);
        // Push past the last commit — a crash would leave these bytes.
        ckpt.begin_level(2).unwrap();
        ckpt.push_entry(b"gamma").unwrap();
        ckpt.push_parent(b"p-uncommitted").unwrap();
        drop(ckpt);

        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.level, 1, "the crashy tail never committed");
        let mut resumed = CheckpointWriter::resume(&dir, &manifest).unwrap();
        resumed.begin_level(2).unwrap();
        resumed.push_entry(b"gamma").unwrap();
        resumed.push_parent(b"p3").unwrap();
        resumed.seal_level().unwrap();
        resumed
            .commit(2, 7, "bfs", "store=exact", &[("states", 4)])
            .unwrap();

        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.level, 2);
        assert_eq!(
            manifest.read_parents(&dir).unwrap(),
            vec![
                b"p0".to_vec(),
                b"p1".to_vec(),
                b"p2".to_vec(),
                b"p3".to_vec()
            ],
            "the uncommitted parent record was dropped, the new one kept"
        );
        assert_eq!(
            manifest.read_level(&dir, 2).unwrap(),
            vec![b"gamma".to_vec()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_a_tampered_parents_prefix() {
        let dir = temp_dir("tampered-parents");
        let _ckpt = write_two_levels(&dir);
        let manifest = Manifest::load(&dir).unwrap();
        let parents = dir.join(PARENTS_NAME);
        let mut bytes = std::fs::read(&parents).unwrap();
        bytes[1] ^= 0x01;
        std::fs::write(&parents, bytes).unwrap();
        assert!(matches!(
            CheckpointWriter::resume(&dir, &manifest).unwrap_err(),
            CheckpointError::Corrupt(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
