//! Backend selection.

use std::fmt;
use std::hash::Hash;

use crate::{
    ExactStore, FingerprintStore, RunStore, ShardedStore, StateStoreBackend, StoreStats,
    DEFAULT_RUN_WATERMARK,
};

/// Default stripe count of the sharded backends.
pub const DEFAULT_SHARDS: usize = 64;

/// Default fingerprint width: keeps the omission probability below 1e-6 up
/// to ~23 thousand stored states and below 2% up to ~3 million; widen
/// toward 64 bits for larger sweeps (see the crate docs).
pub const DEFAULT_FINGERPRINT_BITS: u32 = 48;

/// Which visited-state backend a run should use.
///
/// Carried by `CheckerConfig` in `mp-checker`; `Copy` so configurations
/// stay cheap to pass around.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreConfig {
    /// Exact full-key storage behind a single lock (the default).
    #[default]
    Exact,
    /// Exact full-key storage, lock-striped for concurrent inserts.
    Sharded {
        /// Stripe count (rounded up to a power of two).
        shards: usize,
    },
    /// Hash compaction: only a `bits`-wide fingerprint per state is kept.
    /// `Verified` verdicts become probabilistic; see the `mp-store` crate
    /// docs for the soundness contract.
    Fingerprint {
        /// Fingerprint width in bits (clamped to `8..=64`).
        bits: u32,
        /// Stripe count (rounded up to a power of two).
        shards: usize,
    },
    /// External-memory hash compaction: a small in-RAM buffer + bloom
    /// front, with full 64-bit fingerprints spilled to sorted on-disk runs
    /// past the watermark (see [`RunStore`]). Probabilistic like
    /// [`StoreConfig::Fingerprint`], but resident memory stays bounded by
    /// the watermark however large the state space grows.
    Runs {
        /// Fingerprints buffered in RAM before a sorted run is spilled.
        watermark_entries: usize,
    },
}

impl StoreConfig {
    /// The sharded backend with the default stripe count.
    pub fn sharded() -> Self {
        StoreConfig::Sharded {
            shards: DEFAULT_SHARDS,
        }
    }

    /// The fingerprint backend with the given width and a single stripe —
    /// the compact layout for the sequential engines (per-shard tables
    /// carry a fixed overhead that defeats compaction on small runs).
    /// [`StoreConfig::for_parallel`] widens it for concurrent use.
    pub fn fingerprint(bits: u32) -> Self {
        StoreConfig::Fingerprint { bits, shards: 1 }
    }

    /// The external-memory runs backend with the default watermark.
    pub fn runs() -> Self {
        StoreConfig::Runs {
            watermark_entries: DEFAULT_RUN_WATERMARK,
        }
    }

    /// The external-memory runs backend with an explicit watermark (tiny
    /// watermarks force multi-run spilling on small models, which is how
    /// the tests and the smoke sweep exercise the merge machinery).
    pub fn runs_with_watermark(watermark_entries: usize) -> Self {
        StoreConfig::Runs {
            watermark_entries: watermark_entries.max(1),
        }
    }

    /// The configuration the parallel engine actually uses: a single-lock
    /// store would serialise every worker on one mutex, so the exact store
    /// and single-stripe fingerprint stores are upgraded to their
    /// lock-striped equivalents; explicitly-striped choices pass through.
    pub fn for_parallel(&self) -> StoreConfig {
        match *self {
            StoreConfig::Exact => StoreConfig::sharded(),
            StoreConfig::Fingerprint { bits, shards: 1 } => StoreConfig::Fingerprint {
                bits,
                shards: DEFAULT_SHARDS,
            },
            other => other,
        }
    }

    /// Returns `true` if the backend stores full keys (no omissions).
    pub fn is_exact(&self) -> bool {
        !matches!(
            self,
            StoreConfig::Fingerprint { .. } | StoreConfig::Runs { .. }
        )
    }

    /// Builds the backend for key type `K`.
    pub fn build<K: Eq + Hash>(&self) -> StoreImpl<K> {
        match *self {
            StoreConfig::Exact => StoreImpl::Exact(ExactStore::new()),
            StoreConfig::Sharded { shards } => StoreImpl::Sharded(ShardedStore::new(shards)),
            StoreConfig::Fingerprint { bits, shards } => {
                StoreImpl::Fingerprint(FingerprintStore::new(bits, shards))
            }
            StoreConfig::Runs { watermark_entries } => {
                StoreImpl::Runs(RunStore::new(watermark_entries))
            }
        }
    }
}

impl fmt::Display for StoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreConfig::Exact => write!(f, "exact"),
            StoreConfig::Sharded { shards } => write!(f, "sharded({shards})"),
            StoreConfig::Fingerprint { bits, .. } => write!(f, "fingerprint({bits}-bit)"),
            StoreConfig::Runs { watermark_entries } => write!(f, "runs({watermark_entries})"),
        }
    }
}

/// A backend built from a [`StoreConfig`] (enum dispatch, so engines stay
/// generic-friendly without trait objects).
#[derive(Debug)]
pub enum StoreImpl<K> {
    /// See [`ExactStore`].
    Exact(ExactStore<K>),
    /// See [`ShardedStore`].
    Sharded(ShardedStore<K>),
    /// See [`FingerprintStore`].
    Fingerprint(FingerprintStore<K>),
    /// See [`RunStore`].
    Runs(RunStore<K>),
}

impl<K: Eq + Hash> StateStoreBackend<K> for StoreImpl<K> {
    fn insert(&self, key: K) -> bool {
        match self {
            StoreImpl::Exact(s) => s.insert(key),
            StoreImpl::Sharded(s) => s.insert(key),
            StoreImpl::Fingerprint(s) => s.insert(key),
            StoreImpl::Runs(s) => s.insert(key),
        }
    }

    fn insert_ref(&self, key: &K) -> bool
    where
        K: Clone,
    {
        match self {
            StoreImpl::Exact(s) => s.insert_ref(key),
            StoreImpl::Sharded(s) => s.insert_ref(key),
            StoreImpl::Fingerprint(s) => s.insert_ref(key),
            StoreImpl::Runs(s) => s.insert_ref(key),
        }
    }

    fn contains(&self, key: &K) -> bool {
        match self {
            StoreImpl::Exact(s) => s.contains(key),
            StoreImpl::Sharded(s) => s.contains(key),
            StoreImpl::Fingerprint(s) => s.contains(key),
            StoreImpl::Runs(s) => s.contains(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            StoreImpl::Exact(s) => StateStoreBackend::len(s),
            StoreImpl::Sharded(s) => StateStoreBackend::len(s),
            StoreImpl::Fingerprint(s) => StateStoreBackend::<K>::len(s),
            StoreImpl::Runs(s) => StateStoreBackend::<K>::len(s),
        }
    }

    fn stats(&self) -> StoreStats {
        match self {
            StoreImpl::Exact(s) => s.stats(),
            StoreImpl::Sharded(s) => s.stats(),
            StoreImpl::Fingerprint(s) => StateStoreBackend::<K>::stats(s),
            StoreImpl::Runs(s) => StateStoreBackend::<K>::stats(s),
        }
    }

    fn maintain(&self) {
        // Only the external-memory backend has level-boundary work (merging
        // its sorted runs); the in-memory backends keep the default no-op.
        if let StoreImpl::Runs(s) = self {
            StateStoreBackend::<K>::maintain(s);
        }
    }

    fn name(&self) -> &'static str {
        match self {
            StoreImpl::Exact(s) => StateStoreBackend::name(s),
            StoreImpl::Sharded(s) => StateStoreBackend::name(s),
            StoreImpl::Fingerprint(s) => StateStoreBackend::<K>::name(s),
            StoreImpl::Runs(s) => StateStoreBackend::<K>::name(s),
        }
    }
}
