//! The exact `HashSet` backend and the legacy `StateStore` wrapper.

use std::collections::HashSet;
use std::hash::Hash;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::backend::{table_bytes, StateStoreBackend, StoreStats};

/// The exact visited-state set: a single `HashSet` of full keys behind one
/// mutex. Sound and exact; the lock is uncontended in the sequential
/// engines. For parallel search prefer [`crate::ShardedStore`].
#[derive(Debug, Default)]
pub struct ExactStore<K> {
    seen: Mutex<HashSet<K>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K: Eq + Hash> ExactStore<K> {
    /// Creates an empty store.
    pub fn new() -> Self {
        ExactStore {
            seen: Mutex::new(HashSet::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Creates a store with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ExactStore {
            seen: Mutex::new(HashSet::with_capacity(capacity)),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn record(&self, present: bool) {
        if present {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<K: Eq + Hash> StateStoreBackend<K> for ExactStore<K> {
    fn insert(&self, key: K) -> bool {
        let new = self.seen.lock().expect("store poisoned").insert(key);
        self.record(!new);
        new
    }

    fn insert_ref(&self, key: &K) -> bool
    where
        K: Clone,
    {
        let mut seen = self.seen.lock().expect("store poisoned");
        let new = if seen.contains(key) {
            false
        } else {
            seen.insert(key.clone())
        };
        drop(seen);
        self.record(!new);
        new
    }

    fn contains(&self, key: &K) -> bool {
        let present = self.seen.lock().expect("store poisoned").contains(key);
        self.record(present);
        present
    }

    fn len(&self) -> usize {
        self.seen.lock().expect("store poisoned").len()
    }

    fn stats(&self) -> StoreStats {
        let seen = self.seen.lock().expect("store poisoned");
        StoreStats {
            entries: seen.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            approx_bytes: table_bytes(seen.capacity(), size_of::<K>()),
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// A set of visited states with insertion statistics (legacy `&mut` API).
///
/// This is the original `mp_checker::StateStore` type, migrated here and
/// re-implemented on top of [`ExactStore`]. It keeps the `&mut self`
/// signatures for existing callers but follows the subsystem's unified hit
/// accounting: **`contains` now counts a hit when the key is found** (it
/// previously did not), so statistics agree with every
/// [`StateStoreBackend`] implementation.
#[derive(Debug, Default)]
pub struct StateStore<K> {
    inner: ExactStore<K>,
}

impl<K: Eq + Hash> StateStore<K> {
    /// Creates an empty store.
    pub fn new() -> Self {
        StateStore {
            inner: ExactStore::new(),
        }
    }

    /// Creates a store with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        StateStore {
            inner: ExactStore::with_capacity(capacity),
        }
    }

    /// Inserts a state; returns `true` if it was new.
    pub fn insert(&mut self, key: K) -> bool {
        StateStoreBackend::insert(&self.inner, key)
    }

    /// Returns `true` if the state has been seen before. Counts a hit when
    /// found (unified accounting).
    pub fn contains(&self, key: &K) -> bool {
        StateStoreBackend::contains(&self.inner, key)
    }

    /// Number of distinct states stored.
    pub fn len(&self) -> usize {
        StateStoreBackend::len(&self.inner)
    }

    /// Returns `true` if nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        StateStoreBackend::is_empty(&self.inner)
    }

    /// Number of queries that found the state already present.
    pub fn hits(&self) -> usize {
        self.inner.stats().hits
    }

    /// Snapshot of the full counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut store = StateStore::new();
        assert!(store.is_empty());
        assert!(store.insert(1u32));
        assert!(store.insert(2));
        assert!(!store.insert(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits(), 1);
        assert!(store.contains(&2));
        assert!(!store.contains(&3));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut store = StateStore::with_capacity(100);
        assert!(store.insert("a"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits(), 0);
        assert!(store.stats().approx_bytes > 0);
    }

    #[test]
    fn contains_counts_as_hit_when_found() {
        // Unified accounting: a successful `contains` is a hit, a failed
        // one is a miss (this changed when the store moved to `mp-store`).
        let mut store = StateStore::new();
        store.insert(5u8);
        assert!(store.contains(&5));
        assert!(!store.contains(&6));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.stats().misses, 2);
    }
}
