//! The hash-compaction (fingerprint) backend.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::backend::{table_bytes, StateStoreBackend, StoreStats};
use crate::sharded::hash64;

/// A visited-state set that stores only a w-bit fingerprint of each key's
/// hash instead of the key itself.
///
/// Memory per visited state drops from the full key size to ~9 bytes
/// regardless of how large the protocol state is, which is what makes the
/// Table I/II protocol runs fit in memory at larger parameters. The price
/// is a bounded **omission probability**: two distinct states whose hashes
/// agree on the stored w bits are conflated, and the subtree below the
/// second one is silently skipped. See the crate-level documentation
/// ([`crate`]) for the exact soundness contract; in short, `Verified`
/// becomes probabilistic while counterexamples stay exact.
///
/// The store is lock-striped exactly like [`crate::ShardedStore`], so it is
/// also safe (and fast) under the parallel engine.
#[derive(Debug)]
pub struct FingerprintStore<K> {
    shards: Vec<Mutex<HashSet<u64>>>,
    shard_bits: u32,
    mask: u64,
    bits: u32,
    hits: AtomicUsize,
    misses: AtomicUsize,
    _key: PhantomData<fn(K) -> K>,
}

impl<K: Hash> FingerprintStore<K> {
    /// Creates a store keeping `bits`-bit fingerprints (clamped to
    /// `8..=64`) across `shards` stripes (rounded up to a power of two).
    pub fn new(bits: u32, shards: usize) -> Self {
        let bits = bits.clamp(8, 64);
        let shards = shards.max(1).next_power_of_two();
        FingerprintStore {
            shards: (0..shards).map(|_| Mutex::new(HashSet::new())).collect(),
            shard_bits: shards.trailing_zeros(),
            mask: if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
            bits,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            _key: PhantomData,
        }
    }

    /// Fingerprint width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Birthday-bound estimate of the probability that at least one state
    /// was wrongly treated as visited, given the current number of stored
    /// fingerprints: `1 − exp(−n² / 2^(w+1))`.
    pub fn omission_probability(&self) -> f64 {
        let n = self.len() as f64;
        let space = 2f64.powi(self.bits as i32 + 1);
        1.0 - (-(n * n) / space).exp()
    }

    fn fingerprint_and_shard(&self, key: &K) -> (u64, &Mutex<HashSet<u64>>) {
        let fp = hash64(key) & self.mask;
        // The shard is derived from the fingerprint itself (Fibonacci
        // mixing of its bits), so equal fingerprints always land in the
        // same shard and membership is purely a function of the w-bit
        // fingerprint — the omission probability depends only on `bits`.
        let index = if self.shard_bits == 0 {
            0
        } else {
            (fp.wrapping_mul(0x9e3779b97f4a7c15) >> (64 - self.shard_bits)) as usize
        };
        (fp, &self.shards[index])
    }

    fn record(&self, present: bool) {
        if present {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn insert_ref_inner(&self, key: &K) -> bool {
        let (fp, shard) = self.fingerprint_and_shard(key);
        let new = shard.lock().expect("shard poisoned").insert(fp);
        self.record(!new);
        new
    }
}

impl<K: Hash> StateStoreBackend<K> for FingerprintStore<K> {
    fn insert(&self, key: K) -> bool {
        self.insert_ref_inner(&key)
    }

    fn insert_ref(&self, key: &K) -> bool
    where
        K: Clone,
    {
        // Only the hash is stored — no clone, ever.
        self.insert_ref_inner(key)
    }

    fn contains(&self, key: &K) -> bool {
        let (fp, shard) = self.fingerprint_and_shard(key);
        let present = shard.lock().expect("shard poisoned").contains(&fp);
        self.record(present);
        present
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    fn stats(&self) -> StoreStats {
        let mut entries = 0;
        let mut approx_bytes = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            entries += shard.len();
            approx_bytes += table_bytes(shard.capacity(), size_of::<u64>());
        }
        StoreStats {
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            approx_bytes,
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "fingerprint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_is_clamped() {
        assert_eq!(FingerprintStore::<u64>::new(1, 1).bits(), 8);
        assert_eq!(FingerprintStore::<u64>::new(200, 1).bits(), 64);
        assert_eq!(FingerprintStore::<u64>::new(48, 1).bits(), 48);
    }

    #[test]
    fn distinct_keys_with_distinct_fingerprints_are_distinct() {
        let store = FingerprintStore::<&str>::new(64, 8);
        assert!(store.insert("a"));
        assert!(store.insert("b"));
        assert!(!store.insert("a"));
        assert!(store.contains(&"b"));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn documented_default_width_bound_holds() {
        // The docs promise p < 1e-6 up to ~23 thousand states at 48 bits;
        // pin that claim to the formula so the two cannot drift apart.
        let store = FingerprintStore::<u64>::new(48, 1);
        for k in 0u64..23_000 {
            store.insert(k);
        }
        assert_eq!(store.len(), 23_000, "no collisions expected at 48 bits");
        let p = store.omission_probability();
        assert!(p < 1.1e-6, "p = {p}");
    }

    #[test]
    fn omission_probability_is_zero_when_empty_and_grows() {
        let store = FingerprintStore::<u64>::new(16, 1);
        assert_eq!(store.omission_probability(), 0.0);
        for k in 0u64..200 {
            store.insert(k);
        }
        let p = store.omission_probability();
        assert!(p > 0.0 && p < 1.0, "p = {p}");
    }
}
