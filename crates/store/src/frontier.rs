//! Spillable BFS frontiers and append-only spill logs.
//!
//! Breadth-first search keeps two level queues alive at once — the level
//! being expanded and the level being generated — and on fault-augmented
//! models those levels grow with the state space (the crash1+drop1 sweep
//! cells are ~20x the seed models). The visited set already has compact
//! backends (hash compaction); this module gives the *frontier* the same
//! treatment so paper-scale budgets fit in memory:
//!
//! * [`MemFrontier`] — two in-memory `VecDeque`s, the default; byte-for-byte
//!   the behaviour the engines had before the frontier became pluggable;
//! * [`DiskFrontier`] — items are encoded (`mp-model`'s [`Encode`]/
//!   [`Decode`] codec) into an in-memory buffer; whenever the buffer
//!   reaches the configured **watermark** it is written to a temporary
//!   spill file as one fixed-size segment, and segments are read back
//!   sequentially, level by level, when the level is dequeued. Memory held
//!   per level is bounded by the watermark regardless of frontier size.
//!
//! Both implement [`FrontierBackend`] and preserve strict FIFO order, so an
//! engine driving either explores states in the identical order — spill on
//! and spill off produce byte-identical verdicts and state counts.
//!
//! [`SpillLog`] is the companion structure for the BFS parent-pointer
//! tables: an append-only, randomly-readable log of encoded records with
//! the same watermark discipline, so counterexample paths stay
//! reconstructible without keeping every transition instance in memory.
//!
//! Symmetry interaction is the engines' job: with orbit reduction active
//! they enqueue the *canonical representative* plus the permutation index δ
//! that produced it, and re-derive the concrete state on dequeue by
//! applying δ⁻¹ — so frontier bytes shrink with the orbit collapse while
//! exploration and counterexamples stay concrete (see `mp-checker`'s BFS
//! engines).

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mp_model::{read_delta_record, write_delta_record, Decode, DecodeError, Encode};
use mp_trace::{Histogram, Phase, TraceHandle};

/// Default in-memory watermark (and segment size) of the disk frontier:
/// one segment's worth of encoded states is buffered before it is spilled.
pub const DEFAULT_FRONTIER_WATERMARK: usize = 32 << 20;

/// Which frontier implementation the BFS engines should drive.
///
/// Carried by `CheckerConfig` in `mp-checker` next to [`StoreConfig`]
/// (visited set and frontier are the two memory-critical structures of a
/// stateful breadth-first run); `Copy` so configurations stay cheap to pass
/// around. Spill files are created under [`std::env::temp_dir`] and removed
/// when the frontier is dropped.
///
/// [`StoreConfig`]: crate::StoreConfig
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierConfig {
    /// Keep every frontier entry in memory (the default).
    #[default]
    Mem,
    /// Spill encoded entries to disk in watermark-sized segments.
    Disk {
        /// Bytes of encoded entries buffered in memory per level queue
        /// before a segment is written out (also the segment size).
        watermark_bytes: usize,
        /// Delta-encode each record against the previous record of its
        /// segment (BFS neighbours share most of their bytes, so segments
        /// shrink several-fold). Each segment stays self-contained: its
        /// first record is stored whole. See `docs/ON_DISK_FORMATS.md`.
        delta: bool,
    },
}

impl FrontierConfig {
    /// The disk-backed frontier with the default watermark.
    pub fn disk() -> Self {
        FrontierConfig::Disk {
            watermark_bytes: DEFAULT_FRONTIER_WATERMARK,
            delta: false,
        }
    }

    /// The disk-backed frontier with an explicit watermark (tiny watermarks
    /// force multi-segment spilling, which is how the tests exercise the
    /// segment machinery on small models).
    pub fn disk_with_watermark(watermark_bytes: usize) -> Self {
        FrontierConfig::Disk {
            watermark_bytes: watermark_bytes.max(1),
            delta: false,
        }
    }

    /// Like [`FrontierConfig::disk_with_watermark`], with delta-compressed
    /// segments (each record stored as its difference from the previous
    /// record of the segment).
    pub fn disk_delta_with_watermark(watermark_bytes: usize) -> Self {
        FrontierConfig::Disk {
            watermark_bytes: watermark_bytes.max(1),
            delta: true,
        }
    }

    /// Returns `true` if this configuration spills to disk (the engines
    /// append `+spill` to their strategy labels when it does).
    pub fn spills(&self) -> bool {
        matches!(self, FrontierConfig::Disk { .. })
    }

    /// Builds the frontier for item type `T` (enum dispatch, like
    /// [`StoreConfig::build`](crate::StoreConfig::build)).
    pub fn build<T, C: ItemCodec<T>>(&self, codec: C) -> FrontierImpl<T, C> {
        match *self {
            FrontierConfig::Mem => FrontierImpl::Mem(MemFrontier::new()),
            FrontierConfig::Disk {
                watermark_bytes,
                delta,
            } => FrontierImpl::Disk(Box::new(DiskFrontier::with_options(
                watermark_bytes,
                delta,
                codec,
            ))),
        }
    }

    /// Builds the append-only log companion for record type `T` (in-memory
    /// vector, or encoded records spilled with the same watermark).
    pub fn build_log<T: Clone, C: ItemCodec<T>>(&self, codec: C) -> SpillLog<T, C> {
        match *self {
            FrontierConfig::Mem => SpillLog::mem(codec),
            // The log is randomly read back one record at a time, so delta
            // chains would defeat it — records stay raw regardless.
            FrontierConfig::Disk {
                watermark_bytes, ..
            } => SpillLog::disk(watermark_bytes, codec),
        }
    }
}

impl std::fmt::Display for FrontierConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontierConfig::Mem => write!(f, "mem"),
            FrontierConfig::Disk {
                watermark_bytes,
                delta,
            } => {
                let delta = if *delta { ", delta" } else { "" };
                write!(f, "disk({} KiB watermark{delta})", watermark_bytes / 1024)
            }
        }
    }
}

/// Encodes and decodes one frontier item.
///
/// The disk frontier is generic over the codec instead of bounding `T`
/// directly because some items carry non-serializable *configuration* next
/// to their data — an observer holding a spec handle, say. The engine
/// supplies a codec that knows how to rebuild such items from a template;
/// plain data uses [`PlainCodec`].
pub trait ItemCodec<T> {
    /// Appends the encoding of `item` to `out`.
    fn encode_item(&self, item: &T, out: &mut Vec<u8>);

    /// Decodes one item from the front of `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    fn decode_item(&self, input: &mut &[u8]) -> Result<T, DecodeError>;
}

/// The [`ItemCodec`] of plain data: delegates to the item's own
/// [`Encode`]/[`Decode`] implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainCodec;

impl<T: Encode + Decode> ItemCodec<T> for PlainCodec {
    fn encode_item(&self, item: &T, out: &mut Vec<u8>) {
        item.encode(out);
    }

    fn decode_item(&self, input: &mut &[u8]) -> Result<T, DecodeError> {
        T::decode(input)
    }
}

/// A snapshot of a frontier's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Peak number of items queued at once (both level queues together).
    pub peak_items: usize,
    /// Peak bytes of queued payload: exact encoded bytes for the disk
    /// frontier, `peak_items * size_of::<T>()` for the in-memory frontier
    /// (an underestimate when items own heap data — the number exists for
    /// trend comparisons, not absolute accounting).
    pub peak_bytes: usize,
    /// Total bytes written to the spill file over the run (0 in memory).
    pub spilled_bytes: usize,
    /// Number of segments written to the spill file (0 in memory).
    pub segments: usize,
}

/// A two-level BFS frontier: [`push`](FrontierBackend::push) enqueues into
/// the *next* level, [`pop`](FrontierBackend::pop) dequeues the *current*
/// level in FIFO order, and [`advance_level`](FrontierBackend::advance_level)
/// promotes next to current when the current level is exhausted.
pub trait FrontierBackend<T> {
    /// Enqueues an item into the next level.
    fn push(&mut self, item: T);

    /// Dequeues the next item of the current level (FIFO), or `None` when
    /// the level is exhausted.
    fn pop(&mut self) -> Option<T>;

    /// Promotes the next level to current and returns its item count.
    ///
    /// # Panics
    ///
    /// Panics if the current level has not been fully dequeued.
    fn advance_level(&mut self) -> usize;

    /// Snapshot of the counters.
    fn stats(&self) -> FrontierStats;

    /// Short backend name (`"mem"`, `"disk"`).
    fn name(&self) -> &'static str;

    /// Attaches a run's [`TraceHandle`] so the backend can attribute its
    /// encode/decode work and spill I/O to the trace phases
    /// ([`Phase::FrontierEncode`], [`Phase::FrontierDecode`],
    /// [`Phase::SpillIo`]) and record spilled segment sizes. The in-memory
    /// frontier does no such work, so the default is a no-op.
    fn set_trace(&mut self, _trace: TraceHandle) {}
}

/// A frontier built from a [`FrontierConfig`].
#[derive(Debug)]
pub enum FrontierImpl<T, C> {
    /// See [`MemFrontier`].
    Mem(MemFrontier<T>),
    /// See [`DiskFrontier`] (boxed: the disk frontier carries files,
    /// buffers and segment lists the in-memory variant has no use for).
    Disk(Box<DiskFrontier<T, C>>),
}

impl<T, C: ItemCodec<T>> FrontierBackend<T> for FrontierImpl<T, C> {
    fn push(&mut self, item: T) {
        match self {
            FrontierImpl::Mem(f) => f.push(item),
            FrontierImpl::Disk(f) => f.push(item),
        }
    }

    fn pop(&mut self) -> Option<T> {
        match self {
            FrontierImpl::Mem(f) => f.pop(),
            FrontierImpl::Disk(f) => f.pop(),
        }
    }

    fn advance_level(&mut self) -> usize {
        match self {
            FrontierImpl::Mem(f) => f.advance_level(),
            FrontierImpl::Disk(f) => f.advance_level(),
        }
    }

    fn stats(&self) -> FrontierStats {
        match self {
            FrontierImpl::Mem(f) => FrontierBackend::stats(f),
            FrontierImpl::Disk(f) => f.stats(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FrontierImpl::Mem(f) => FrontierBackend::name(f),
            FrontierImpl::Disk(f) => f.name(),
        }
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        match self {
            FrontierImpl::Mem(f) => FrontierBackend::<T>::set_trace(f, trace),
            FrontierImpl::Disk(f) => f.set_trace(trace),
        }
    }
}

/// The in-memory frontier: two `VecDeque` level queues.
#[derive(Debug)]
pub struct MemFrontier<T> {
    current: VecDeque<T>,
    next: VecDeque<T>,
    peak_items: usize,
}

impl<T> MemFrontier<T> {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        MemFrontier {
            current: VecDeque::new(),
            next: VecDeque::new(),
            peak_items: 0,
        }
    }
}

impl<T> Default for MemFrontier<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FrontierBackend<T> for MemFrontier<T> {
    fn push(&mut self, item: T) {
        self.next.push_back(item);
        self.peak_items = self.peak_items.max(self.current.len() + self.next.len());
    }

    fn pop(&mut self) -> Option<T> {
        self.current.pop_front()
    }

    fn advance_level(&mut self) -> usize {
        assert!(
            self.current.is_empty(),
            "advance_level with {} items still queued in the current level",
            self.current.len()
        );
        std::mem::swap(&mut self.current, &mut self.next);
        self.current.len()
    }

    fn stats(&self) -> FrontierStats {
        FrontierStats {
            peak_items: self.peak_items,
            peak_bytes: self.peak_items * std::mem::size_of::<T>(),
            spilled_bytes: 0,
            segments: 0,
        }
    }

    fn name(&self) -> &'static str {
        "mem"
    }
}

/// Names spill files uniquely within the process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

pub(crate) fn spill_path(prefix: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "{prefix}-{}-{}.bin",
        std::process::id(),
        SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

pub(crate) fn open_spill(path: &PathBuf) -> File {
    OpenOptions::new()
        .create(true)
        .truncate(true)
        .read(true)
        .write(true)
        .open(path)
        .unwrap_or_else(|e| panic!("cannot create spill file {}: {e}", path.display()))
}

/// One contiguous run of encoded records in the spill file.
#[derive(Clone, Copy, Debug)]
struct Segment {
    offset: u64,
    len: usize,
    items: usize,
}

/// The disk-backed frontier. See the module docs for the layout; the write
/// path appends watermark-sized segments of concatenated encoded records,
/// the read path streams them back in write order, so FIFO order is
/// preserved exactly.
///
/// Two spill files alternate, one per live level: the next level's
/// segments are written to one file while the current level's are read
/// from the other, and [`advance_level`](FrontierBackend::advance_level)
/// swaps their roles and truncates the fully-consumed one — so disk usage
/// stays bounded by the two live levels no matter how many levels the run
/// spills in total.
///
/// # Panics
///
/// I/O errors on the spill files and decode failures panic: the spill
/// files are process-private scratch space, so either indicates a broken
/// environment (disk full) or a codec bug, and the engines have no partial
/// verdict to salvage.
#[derive(Debug)]
pub struct DiskFrontier<T, C> {
    codec: C,
    /// The two alternating spill files; `files[write_file]` receives the
    /// next level's segments, the other one holds the current level's.
    files: [File; 2],
    paths: [PathBuf; 2],
    write_file: usize,
    write_len: u64,
    watermark: usize,
    // The next level, being written: encoded records buffered until the
    // watermark, then spilled as one segment.
    next_buf: Vec<u8>,
    next_buf_items: usize,
    next_segments: Vec<Segment>,
    next_items: usize,
    next_bytes: usize,
    // The current level, being read: pending on-disk segments, then the
    // in-memory tail that never reached the watermark.
    cur_chunk: Vec<u8>,
    cur_pos: usize,
    cur_chunk_items: usize,
    cur_segments: VecDeque<Segment>,
    cur_tail: Vec<u8>,
    cur_tail_items: usize,
    cur_items: usize,
    cur_bytes: usize,
    // Delta compression (see `FrontierConfig::Disk { delta }`): the encoded
    // previous record of the write chain / read chain, and a scratch buffer
    // the next record is encoded into before it is delta-framed. Both
    // chains restart empty at every segment boundary, so each segment (and
    // the in-memory tail) decodes without its neighbours.
    delta: bool,
    prev_write: Vec<u8>,
    prev_read: Vec<u8>,
    scratch: Vec<u8>,
    stats: FrontierStats,
    trace: TraceHandle,
    _marker: PhantomData<fn() -> T>,
}

impl<T, C: ItemCodec<T>> DiskFrontier<T, C> {
    /// Creates a disk frontier spilling past `watermark` bytes per level.
    pub fn new(watermark: usize, codec: C) -> Self {
        Self::with_options(watermark, false, codec)
    }

    /// Creates a disk frontier, optionally delta-compressing each record
    /// against its predecessor in the segment (`delta = true`).
    pub fn with_options(watermark: usize, delta: bool, codec: C) -> Self {
        let paths = [spill_path("mp-frontier"), spill_path("mp-frontier")];
        let files = [open_spill(&paths[0]), open_spill(&paths[1])];
        DiskFrontier {
            codec,
            files,
            paths,
            write_file: 0,
            write_len: 0,
            watermark: watermark.max(1),
            next_buf: Vec::new(),
            next_buf_items: 0,
            next_segments: Vec::new(),
            next_items: 0,
            next_bytes: 0,
            cur_chunk: Vec::new(),
            cur_pos: 0,
            cur_chunk_items: 0,
            cur_segments: VecDeque::new(),
            cur_tail: Vec::new(),
            cur_tail_items: 0,
            cur_items: 0,
            cur_bytes: 0,
            delta,
            prev_write: Vec::new(),
            prev_read: Vec::new(),
            scratch: Vec::new(),
            stats: FrontierStats::default(),
            trace: TraceHandle::disabled(),
            _marker: PhantomData,
        }
    }

    fn flush_next_buf(&mut self) {
        if self.next_buf.is_empty() {
            return;
        }
        let _io = self.trace.span(Phase::SpillIo);
        self.trace
            .record(Histogram::SpillSegmentBytes, self.next_buf.len() as u64);
        let file = &mut self.files[self.write_file];
        file.seek(SeekFrom::Start(self.write_len))
            .and_then(|_| file.write_all(&self.next_buf))
            .unwrap_or_else(|e| {
                panic!(
                    "frontier spill write to {}: {e}",
                    self.paths[self.write_file].display()
                )
            });
        self.next_segments.push(Segment {
            offset: self.write_len,
            len: self.next_buf.len(),
            items: self.next_buf_items,
        });
        self.write_len += self.next_buf.len() as u64;
        self.stats.spilled_bytes += self.next_buf.len();
        self.stats.segments += 1;
        self.next_buf.clear();
        self.next_buf_items = 0;
        // Each segment is self-contained: the delta chain restarts, so the
        // next record is stored whole.
        self.prev_write.clear();
    }

    fn refill_chunk(&mut self) -> bool {
        // The read chain restarts with each segment (and with the tail),
        // mirroring the write side.
        self.prev_read.clear();
        if let Some(segment) = self.cur_segments.pop_front() {
            let _io = self.trace.span(Phase::SpillIo);
            self.cur_chunk.resize(segment.len, 0);
            let read_file = 1 - self.write_file;
            let file = &mut self.files[read_file];
            file.seek(SeekFrom::Start(segment.offset))
                .and_then(|_| file.read_exact(&mut self.cur_chunk))
                .unwrap_or_else(|e| {
                    panic!(
                        "frontier spill read from {}: {e}",
                        self.paths[read_file].display()
                    )
                });
            self.cur_pos = 0;
            self.cur_chunk_items = segment.items;
            return true;
        }
        if self.cur_tail_items > 0 {
            self.cur_chunk = std::mem::take(&mut self.cur_tail);
            self.cur_pos = 0;
            self.cur_chunk_items = self.cur_tail_items;
            self.cur_tail_items = 0;
            return true;
        }
        false
    }
}

impl<T, C: ItemCodec<T>> FrontierBackend<T> for DiskFrontier<T, C> {
    fn push(&mut self, item: T) {
        let start = self.next_buf.len();
        {
            let _span = self.trace.span(Phase::FrontierEncode);
            if self.delta {
                self.scratch.clear();
                self.codec.encode_item(&item, &mut self.scratch);
                write_delta_record(&self.prev_write, &self.scratch, &mut self.next_buf);
                std::mem::swap(&mut self.prev_write, &mut self.scratch);
            } else {
                self.codec.encode_item(&item, &mut self.next_buf);
            }
        }
        let record = self.next_buf.len() - start;
        self.next_buf_items += 1;
        self.next_items += 1;
        self.next_bytes += record;
        self.stats.peak_items = self.stats.peak_items.max(self.cur_items + self.next_items);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.cur_bytes + self.next_bytes);
        if self.next_buf.len() >= self.watermark {
            self.flush_next_buf();
        }
    }

    fn pop(&mut self) -> Option<T> {
        if self.cur_chunk_items == 0 && !self.refill_chunk() {
            return None;
        }
        let mut slice = &self.cur_chunk[self.cur_pos..];
        let before = slice.len();
        let item = {
            let _span = self.trace.span(Phase::FrontierDecode);
            if self.delta {
                let full = read_delta_record(&self.prev_read, &mut slice)
                    .unwrap_or_else(|e| panic!("corrupted frontier spill record: {e}"));
                let mut full_slice = full.as_slice();
                let item = self
                    .codec
                    .decode_item(&mut full_slice)
                    .unwrap_or_else(|e| panic!("corrupted frontier spill record: {e}"));
                self.prev_read = full;
                item
            } else {
                self.codec
                    .decode_item(&mut slice)
                    .unwrap_or_else(|e| panic!("corrupted frontier spill record: {e}"))
            }
        };
        self.cur_pos += before - slice.len();
        self.cur_chunk_items -= 1;
        self.cur_items -= 1;
        self.cur_bytes -= before - slice.len();
        Some(item)
    }

    fn advance_level(&mut self) -> usize {
        assert!(
            self.cur_items == 0,
            "advance_level with {} items still queued in the current level",
            self.cur_items
        );
        // Swap the two spill files: the one just written becomes the read
        // side, and the fully-consumed old read file is truncated and
        // becomes the write side — disk stays bounded by two live levels.
        self.write_file = 1 - self.write_file;
        self.write_len = 0;
        let _ = self.files[self.write_file].set_len(0);
        self.cur_segments = std::mem::take(&mut self.next_segments).into();
        self.cur_tail = std::mem::take(&mut self.next_buf);
        self.cur_tail_items = self.next_buf_items;
        self.next_buf_items = 0;
        self.cur_chunk.clear();
        self.cur_pos = 0;
        self.cur_chunk_items = 0;
        self.prev_write.clear();
        self.prev_read.clear();
        self.cur_items = self.next_items;
        self.cur_bytes = self.next_bytes;
        self.next_items = 0;
        self.next_bytes = 0;
        self.cur_items
    }

    fn stats(&self) -> FrontierStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "disk"
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }
}

impl<T, C> Drop for DiskFrontier<T, C> {
    fn drop(&mut self) {
        for path in &self.paths {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// An append-only log of encoded records with random read access, spilling
/// past a watermark. The BFS engine stores its parent-pointer/transition
/// table in one of these: entries are written once in index order and read
/// back only while reconstructing a counterexample path, so the in-memory
/// cost drops to one `(offset, len)` pair per state.
#[derive(Debug)]
pub enum SpillLog<T, C> {
    /// Records kept in memory (the [`FrontierConfig::Mem`] companion).
    Mem {
        /// The records, by index.
        items: Vec<T>,
        /// The codec (unused in memory, kept so both arms build alike).
        codec: C,
    },
    /// Encoded records, spilled past the watermark.
    Disk {
        /// The codec used for every record.
        codec: C,
        /// `(global offset, encoded length)` per record index.
        offsets: Vec<(u64, u32)>,
        /// Encoded records not yet written to the file.
        buf: Vec<u8>,
        /// Global offset of the first byte of `buf`.
        buf_base: u64,
        /// The spill file.
        file: File,
        /// Its path (removed on drop).
        path: PathBuf,
        /// Flush threshold for `buf`.
        watermark: usize,
        /// Total bytes written to the file.
        spilled_bytes: usize,
        /// Trace handle attributing spill I/O to [`Phase::SpillIo`].
        trace: TraceHandle,
    },
}

impl<T: Clone, C: ItemCodec<T>> SpillLog<T, C> {
    /// Creates an in-memory log.
    pub fn mem(codec: C) -> Self {
        SpillLog::Mem {
            items: Vec::new(),
            codec,
        }
    }

    /// Creates a disk-backed log spilling past `watermark` buffered bytes.
    pub fn disk(watermark: usize, codec: C) -> Self {
        let path = spill_path("mp-pathlog");
        let file = open_spill(&path);
        SpillLog::Disk {
            codec,
            offsets: Vec::new(),
            buf: Vec::new(),
            buf_base: 0,
            file,
            path,
            watermark: watermark.max(1),
            spilled_bytes: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Installs a trace handle; spill writes and read-backs are then timed
    /// under [`Phase::SpillIo`]. The in-memory log ignores it.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        if let SpillLog::Disk { trace, .. } = self {
            *trace = handle;
        }
    }

    /// Appends a record and returns its index.
    pub fn push(&mut self, item: T) -> usize {
        match self {
            SpillLog::Mem { items, .. } => {
                items.push(item);
                items.len() - 1
            }
            SpillLog::Disk {
                codec,
                offsets,
                buf,
                buf_base,
                file,
                path,
                watermark,
                spilled_bytes,
                trace,
            } => {
                let start = buf.len();
                codec.encode_item(&item, buf);
                let len = (buf.len() - start) as u32;
                offsets.push((*buf_base + start as u64, len));
                if buf.len() >= *watermark {
                    let _io = trace.span(Phase::SpillIo);
                    trace.record(Histogram::SpillSegmentBytes, buf.len() as u64);
                    file.seek(SeekFrom::Start(*buf_base))
                        .and_then(|_| file.write_all(buf))
                        .unwrap_or_else(|e| {
                            panic!("path-log spill write to {}: {e}", path.display())
                        });
                    *spilled_bytes += buf.len();
                    *buf_base += buf.len() as u64;
                    buf.clear();
                }
                offsets.len() - 1
            }
        }
    }

    /// Reads the record at `index` back.
    ///
    /// # Panics
    ///
    /// Panics if `index` was never pushed, or on spill-file I/O or decode
    /// failure (see [`DiskFrontier`] on why those are fatal).
    pub fn get(&mut self, index: usize) -> T {
        match self {
            SpillLog::Mem { items, .. } => items[index].clone(),
            SpillLog::Disk {
                codec,
                offsets,
                buf,
                buf_base,
                file,
                path,
                trace,
                ..
            } => {
                let (offset, len) = offsets[index];
                let mut record;
                let mut slice = if offset >= *buf_base {
                    let start = (offset - *buf_base) as usize;
                    &buf[start..start + len as usize]
                } else {
                    let _io = trace.span(Phase::SpillIo);
                    record = vec![0u8; len as usize];
                    file.seek(SeekFrom::Start(offset))
                        .and_then(|_| file.read_exact(&mut record))
                        .unwrap_or_else(|e| {
                            panic!("path-log spill read from {}: {e}", path.display())
                        });
                    &record[..]
                };
                codec
                    .decode_item(&mut slice)
                    .unwrap_or_else(|e| panic!("corrupted path-log record: {e}"))
            }
        }
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        match self {
            SpillLog::Mem { items, .. } => items.len(),
            SpillLog::Disk { offsets, .. } => offsets.len(),
        }
    }

    /// Returns `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes written to the spill file (0 for the in-memory log).
    pub fn spilled_bytes(&self) -> usize {
        match self {
            SpillLog::Mem { .. } => 0,
            SpillLog::Disk { spilled_bytes, .. } => *spilled_bytes,
        }
    }

    /// Approximate *resident* bytes of the log — what it costs in RAM, as
    /// opposed to [`spilled_bytes`](Self::spilled_bytes) which counts what
    /// already left for disk. `size_of`-based for the in-memory arm (heap
    /// behind the records is invisible without a deep-size trait); the
    /// offset table plus the unflushed buffer for the disk arm. Feeds the
    /// `parent_log_bytes` memory gauge.
    pub fn approx_bytes(&self) -> usize {
        match self {
            SpillLog::Mem { items, .. } => items.len() * std::mem::size_of::<T>(),
            SpillLog::Disk { offsets, buf, .. } => {
                offsets.len() * std::mem::size_of::<(u64, u32)>() + buf.len()
            }
        }
    }
}

impl<T, C> Drop for SpillLog<T, C> {
    fn drop(&mut self) {
        if let SpillLog::Disk { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Item = (usize, Vec<u8>);

    fn item(i: usize) -> Item {
        (i, vec![i as u8; i % 17])
    }

    fn drive<F: FrontierBackend<Item>>(frontier: &mut F, levels: &[usize]) -> Vec<Item> {
        let mut popped = Vec::new();
        let mut counter = 0;
        for (depth, &width) in levels.iter().enumerate() {
            for _ in 0..width {
                frontier.push(item(counter));
                counter += 1;
            }
            assert_eq!(frontier.advance_level(), width, "level {depth}");
            while let Some(it) = frontier.pop() {
                popped.push(it);
            }
            assert!(frontier.pop().is_none(), "level must stay exhausted");
        }
        assert_eq!(frontier.advance_level(), 0);
        popped
    }

    #[test]
    fn mem_and_disk_pop_in_identical_fifo_order() {
        let levels = [1, 7, 40, 3, 25];
        let mut mem = MemFrontier::new();
        // A watermark of 64 bytes forces many segments per level.
        let mut disk = DiskFrontier::new(64, PlainCodec);
        let from_mem = drive(&mut mem, &levels);
        let from_disk = drive(&mut disk, &levels);
        assert_eq!(from_mem, from_disk);
        assert_eq!(from_mem.len(), levels.iter().sum::<usize>());
        let stats = disk.stats();
        assert!(stats.segments > 1, "tiny watermark must multi-segment");
        assert!(stats.spilled_bytes > 0);
        assert_eq!(FrontierBackend::<Item>::name(&disk), "disk");
        assert_eq!(FrontierBackend::<Item>::name(&mem), "mem");
    }

    #[test]
    fn interleaved_push_pop_respects_levels() {
        // BFS interleaves: pop current while pushing successors to next.
        for config in [FrontierConfig::Mem, FrontierConfig::disk_with_watermark(32)] {
            let mut frontier = config.build::<Item, _>(PlainCodec);
            frontier.push(item(0));
            assert_eq!(frontier.advance_level(), 1);
            let mut seen = vec![];
            let mut next_id = 1;
            for _ in 0..4 {
                while let Some((id, _)) = frontier.pop() {
                    seen.push(id);
                    for _ in 0..2 {
                        frontier.push(item(next_id));
                        next_id += 1;
                    }
                }
                frontier.advance_level();
            }
            // 1 + 2 + 4 + 8 popped ids, in creation order per level.
            assert_eq!(seen, (0..15).collect::<Vec<_>>(), "{config}");
        }
    }

    #[test]
    fn disk_frontier_accounts_bytes_and_reclaims() {
        let mut disk: DiskFrontier<Item, _> = DiskFrontier::new(48, PlainCodec);
        for i in 0..100 {
            disk.push(item(i));
        }
        let peak = disk.stats().peak_bytes;
        assert!(peak > 0);
        assert_eq!(disk.advance_level(), 100);
        while disk.pop().is_some() {}
        // Everything was dequeued; the peak stays, the queue is empty.
        assert_eq!(disk.stats().peak_bytes, peak);
        assert_eq!(disk.advance_level(), 0);
    }

    #[test]
    fn spill_files_stay_bounded_by_two_live_levels() {
        // Every level spills (watermark far below the level size); the two
        // alternating files must keep on-disk bytes bounded by the two
        // live levels even though the cumulative spill keeps growing.
        let mut disk: DiskFrontier<Item, _> = DiskFrontier::new(64, PlainCodec);
        let mut resident_peak = 0u64;
        for level in 0..10 {
            for i in 0..50 {
                disk.push(item(i));
            }
            assert_eq!(disk.advance_level(), 50, "level {level}");
            while disk.pop().is_some() {}
            let resident: u64 = disk
                .paths
                .iter()
                .filter_map(|p| std::fs::metadata(p).ok())
                .map(|m| m.len())
                .sum();
            resident_peak = resident_peak.max(resident);
        }
        let cumulative = disk.stats().spilled_bytes as u64;
        assert!(
            resident_peak * 3 < cumulative,
            "resident spill ({resident_peak}B) must stay far below the \
             cumulative spill ({cumulative}B) — old levels are reclaimed"
        );
    }

    #[test]
    fn delta_disk_frontier_pops_in_identical_fifo_order() {
        let levels = [1, 7, 40, 3, 25];
        let mut mem = MemFrontier::new();
        let mut delta: DiskFrontier<Item, _> = DiskFrontier::with_options(64, true, PlainCodec);
        let from_mem = drive(&mut mem, &levels);
        let from_delta = drive(&mut delta, &levels);
        assert_eq!(from_mem, from_delta);
        let stats = delta.stats();
        assert!(stats.segments > 1, "tiny watermark must multi-segment");
        assert!(stats.spilled_bytes > 0);
    }

    #[test]
    fn delta_segments_shrink_when_records_share_prefixes() {
        // Records with a long shared prefix (the common case for encoded
        // BFS neighbours): delta framing should cut the spill several-fold.
        type Rec = (Vec<u8>, usize);
        fn rec(i: usize) -> Rec {
            (vec![0xAB; 48], i)
        }
        let mut plain: DiskFrontier<Rec, _> = DiskFrontier::new(256, PlainCodec);
        let mut delta: DiskFrontier<Rec, _> = DiskFrontier::with_options(256, true, PlainCodec);
        for i in 0..200 {
            plain.push(rec(i));
            delta.push(rec(i));
        }
        assert_eq!(plain.advance_level(), 200);
        assert_eq!(delta.advance_level(), 200);
        let mut popped = 0;
        loop {
            match (plain.pop(), delta.pop()) {
                (Some(a), Some(b)) => {
                    assert_eq!(a, b);
                    popped += 1;
                }
                (None, None) => break,
                _ => panic!("plain and delta frontiers disagree on length"),
            }
        }
        assert_eq!(popped, 200);
        let (plain_spill, delta_spill) = (plain.stats().spilled_bytes, delta.stats().spilled_bytes);
        assert!(
            delta_spill * 2 < plain_spill,
            "delta spill ({delta_spill}B) must substantially undercut the \
             plain spill ({plain_spill}B)"
        );
    }

    #[test]
    #[should_panic(expected = "advance_level")]
    fn advancing_a_non_exhausted_level_panics() {
        let mut mem = MemFrontier::new();
        mem.push(item(1));
        mem.advance_level();
        mem.push(item(2));
        mem.advance_level(); // item 1 still queued
    }

    #[test]
    fn spill_log_random_access_roundtrips() {
        for config in [
            FrontierConfig::Mem,
            FrontierConfig::disk_with_watermark(100),
        ] {
            let mut log = config.build_log::<Item, _>(PlainCodec);
            assert!(log.is_empty());
            for i in 0..200 {
                assert_eq!(log.push(item(i)), i);
            }
            assert_eq!(log.len(), 200);
            // Read back out of order: spilled region and live buffer both.
            for i in [199, 0, 57, 133, 1, 198] {
                assert_eq!(log.get(i), item(i), "{config}");
            }
            if config.spills() {
                assert!(log.spilled_bytes() > 0);
            } else {
                assert_eq!(log.spilled_bytes(), 0);
            }
        }
    }

    #[test]
    fn config_labels() {
        assert_eq!(FrontierConfig::Mem.to_string(), "mem");
        assert!(FrontierConfig::disk().to_string().starts_with("disk("));
        assert!(!FrontierConfig::Mem.spills());
        assert!(FrontierConfig::disk().spills());
        let delta = FrontierConfig::disk_delta_with_watermark(4096);
        assert!(delta.to_string().contains("delta"), "{delta}");
        assert!(delta.spills());
        assert_eq!(FrontierConfig::default(), FrontierConfig::Mem);
    }
}
