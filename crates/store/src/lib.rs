//! # mp-store — pluggable visited-state storage for stateful search
//!
//! The paper (DSN 2011, Section V-B) observes that the benefit of stateful
//! search "becomes significant with large state spaces" — which makes the
//! visited-state set the memory- and contention-critical data structure of
//! the whole checker. This crate turns it into a first-class subsystem: the
//! search engines of `mp-checker` program against the
//! [`StateStoreBackend`] trait and a [`StoreConfig`] selects one of three
//! backends at run time:
//!
//! * [`ExactStore`] — a plain `HashSet` of full `(state, observer)` keys.
//!   Sound and exact; the default for the sequential engines.
//! * [`ShardedStore`] — the same exact semantics, but lock-striped across N
//!   shards selected by the top bits of the key hash. Concurrent inserters
//!   only contend when they land on the same shard, so the parallel BFS
//!   engine scales without a global mutex on the visited set.
//! * [`FingerprintStore`] — **hash compaction** (Holzmann-style bitstate
//!   cousin): instead of the full key only a w-bit fingerprint of its hash
//!   is stored. Memory per visited state drops from the full key size
//!   (hundreds of bytes for protocol states) to a few bytes, at the price
//!   of a bounded *omission* probability (see below).
//! * [`RunStore`] — **external-memory** hash compaction: full 64-bit
//!   fingerprints, buffered in RAM up to a watermark and then spilled to
//!   sorted on-disk runs fronted by a bloom filter, merged at BFS level
//!   boundaries ([`StateStoreBackend::maintain`]). Resident memory stays
//!   bounded by the watermark + bloom front however large the state space
//!   grows; the omission probability is that of 64-bit fingerprints.
//!
//! ## Soundness caveat of hash compaction
//!
//! With fingerprints, two distinct states whose hashes collide in the
//! stored w bits are indistinguishable: the second one is treated as
//! *already visited* and its successors are never explored. Consequently:
//!
//! * a **`Verified` verdict is probabilistic** — with `n` stored states and
//!   w-bit fingerprints, the probability that at least one state was
//!   wrongly omitted is approximately `1 − exp(−n² / 2^(w+1))`
//!   (birthday bound; see [`FingerprintStore::omission_probability`]);
//! * a **counterexample remains exact** — every reported violation is a
//!   real reachable state, because states on the path are re-executed from
//!   the initial state and properties are evaluated on full states, never
//!   on fingerprints.
//!
//! Pick the width against the expected state count: at the default of 48
//! bits the bound stays below 1e-6 up to ~23 thousand stored states and
//! below 2% up to ~3 million; beyond that it degrades quickly (at 23
//! million states it is ~0.6, i.e. `Verified` means little). Check
//! [`FingerprintStore::omission_probability`] after a run, widen toward 64
//! bits for larger sweeps, and use an exact backend for certification
//! runs.
//!
//! ## Hit accounting
//!
//! All backends count every membership query uniformly: a query (either
//! [`StateStoreBackend::insert`] finding the key present, or
//! [`StateStoreBackend::contains`] returning `true`) is a **hit**, any
//! other query is a **miss**. `ExplorationStats` in `mp-checker` reports
//! these numbers the same way for every engine.
//!
//! ## Spillable BFS frontiers
//!
//! The visited set is one of the two memory-critical structures of a
//! breadth-first run; the other is the **frontier** (two whole BFS levels
//! alive at once). [`FrontierConfig`] makes it pluggable the same way:
//! [`MemFrontier`] is the in-memory default and [`DiskFrontier`] spills
//! encoded states (`mp-model`'s `Encode`/`Decode` codec) to a temporary
//! file in watermark-sized segments, reading them back level by level.
//! Both preserve strict FIFO order, so spill-on and spill-off runs explore
//! identically. [`SpillLog`] gives the BFS parent-pointer tables the same
//! discipline so counterexample paths stay reconstructible. See the
//! [`frontier`](self::FrontierBackend) module types for the details.
//!
//! ## Checkpoint/resume
//!
//! Long sweeps survive being killed: the BFS engines can persist every
//! completed level (frontier entries, parent records, counters) through a
//! [`CheckpointWriter`] and resume from the [`Manifest`] at the last
//! committed level, producing byte-identical verdicts and statistics. All
//! persisted byte layouts are specified in `docs/ON_DISK_FORMATS.md`.
//!
//! ```
//! use mp_store::{FrontierBackend, FrontierConfig, PlainCodec};
//!
//! // A 1-byte watermark forces a spill segment per pushed state.
//! let config = FrontierConfig::disk_with_watermark(1);
//! let mut frontier = config.build::<(u32, Vec<u8>), _>(PlainCodec);
//! for i in 0..10 {
//!     frontier.push((i, vec![0u8; 100]));
//! }
//! assert_eq!(frontier.advance_level(), 10);
//! assert_eq!(frontier.pop(), Some((0, vec![0u8; 100]))); // FIFO
//! let stats = frontier.stats();
//! assert!(stats.segments >= 9 && stats.spilled_bytes >= 900);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod canonical;
mod checkpoint;
mod config;
mod exact;
mod fingerprint;
mod frontier;
mod runstore;
mod sharded;

pub use backend::{StateStoreBackend, StoreStats};
pub use canonical::{canonical_label, CanonicalStore, KeyMapper};
pub use checkpoint::{
    manifest_exists, CheckpointConfig, CheckpointError, CheckpointWriter, FileMeta, Manifest,
    CHECKPOINT_VERSION,
};
pub use config::{StoreConfig, StoreImpl, DEFAULT_FINGERPRINT_BITS, DEFAULT_SHARDS};
pub use exact::{ExactStore, StateStore};
pub use fingerprint::FingerprintStore;
pub use frontier::{
    DiskFrontier, FrontierBackend, FrontierConfig, FrontierImpl, FrontierStats, ItemCodec,
    MemFrontier, PlainCodec, SpillLog, DEFAULT_FRONTIER_WATERMARK,
};
pub use runstore::{RunStore, DEFAULT_RUN_WATERMARK};
pub use sharded::ShardedStore;

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random key stream (SplitMix64).
    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn all_backends_agree_on_small_inputs() {
        // 256 keys with duplicates: every backend must report the same
        // sequence of insert results (64-bit fingerprints of u64 keys are
        // collision-free on this input).
        let mut input = keys(256, 7);
        input.extend(keys(256, 7));
        let configs = [
            StoreConfig::Exact,
            StoreConfig::sharded(),
            StoreConfig::Sharded { shards: 4 },
            StoreConfig::fingerprint(64),
            // A tiny watermark so the external-memory backend spills and
            // answers from its sorted runs, not just the RAM buffer.
            StoreConfig::runs_with_watermark(32),
        ];
        let expected: Vec<bool> = {
            let exact = StoreConfig::Exact.build::<u64>();
            input.iter().map(|k| exact.insert(*k)).collect()
        };
        for config in configs {
            let store = config.build::<u64>();
            let got: Vec<bool> = input.iter().map(|k| store.insert(*k)).collect();
            assert_eq!(got, expected, "{config} disagrees with exact");
            assert_eq!(store.len(), 256, "{config} has the wrong cardinality");
            assert_eq!(store.stats().hits, 256, "{config} miscounts hits");
        }
    }

    #[test]
    fn concurrent_inserts_are_exact_under_contention() {
        // 8 threads insert overlapping slices; afterwards the store must
        // contain exactly the union, and hits+misses must equal the total
        // number of insert calls.
        let input = keys(10_000, 99);
        for config in [StoreConfig::sharded(), StoreConfig::Sharded { shards: 2 }] {
            let store = config.build::<u64>();
            std::thread::scope(|scope| {
                for t in 0..8 {
                    let store = &store;
                    let chunk = &input[t * 1000..(t * 1000 + 3000).min(input.len())];
                    scope.spawn(move || {
                        for k in chunk {
                            store.insert(*k);
                        }
                    });
                }
            });
            let unique: std::collections::HashSet<u64> = input.iter().copied().collect();
            assert_eq!(store.len(), unique.len());
            let stats = store.stats();
            assert_eq!(stats.entries, store.len());
            assert_eq!(stats.hits + stats.misses, 8 * 3000);
            // Every inserted key must be present.
            for k in &input {
                assert!(store.contains(k), "{config} lost a key");
            }
        }
    }

    #[test]
    fn fingerprint_store_uses_less_memory_than_exact() {
        // Keys are large (simulating protocol states); the fingerprint
        // store must report far fewer bytes.
        let big_keys: Vec<[u64; 16]> = keys(2_000, 5).into_iter().map(|k| [k; 16]).collect();
        let exact = StoreConfig::Exact.build::<[u64; 16]>();
        let fp = StoreConfig::fingerprint(48).build::<[u64; 16]>();
        for k in &big_keys {
            exact.insert(*k);
            fp.insert(*k);
        }
        assert_eq!(exact.len(), 2_000);
        assert_eq!(fp.len(), 2_000, "48-bit fingerprints must not collide here");
        let exact_bytes = exact.stats().approx_bytes;
        let fp_bytes = fp.stats().approx_bytes;
        assert!(
            fp_bytes * 4 < exact_bytes,
            "fingerprints ({fp_bytes}B) should be ≥4x smaller than exact ({exact_bytes}B)"
        );
    }

    #[test]
    fn narrow_fingerprints_collide_and_wide_ones_do_not() {
        // An 8-bit fingerprint can hold at most 256 distinct values.
        let store = FingerprintStore::<u64>::new(8, 4);
        for k in keys(4_096, 3) {
            store.insert(k);
        }
        assert!(store.len() <= 256);
        assert!(store.omission_probability() > 0.99);

        let wide = FingerprintStore::<u64>::new(64, 4);
        for k in keys(4_096, 3) {
            wide.insert(k);
        }
        assert_eq!(wide.len(), 4_096);
        assert!(wide.omission_probability() < 1e-6);
    }

    #[test]
    fn contains_counts_hits_uniformly() {
        for config in [
            StoreConfig::Exact,
            StoreConfig::sharded(),
            StoreConfig::fingerprint(64),
            StoreConfig::runs_with_watermark(32),
        ] {
            let store = config.build::<u64>();
            assert!(!store.contains(&1)); // miss
            assert!(store.insert(1)); // miss
            assert!(store.contains(&1)); // hit
            assert!(!store.insert(1)); // hit
            let stats = store.stats();
            assert_eq!(stats.hits, 2, "{config}");
            assert_eq!(stats.misses, 2, "{config}");
        }
    }

    #[test]
    fn insert_ref_matches_insert_semantics_and_accounting() {
        let input = keys(512, 21);
        for config in [
            StoreConfig::Exact,
            StoreConfig::sharded(),
            StoreConfig::fingerprint(64),
            StoreConfig::runs_with_watermark(32),
        ] {
            let by_value = config.build::<u64>();
            let by_ref = config.build::<u64>();
            for k in input.iter().chain(input.iter()) {
                assert_eq!(by_value.insert(*k), by_ref.insert_ref(k), "{config}");
            }
            assert_eq!(by_value.len(), by_ref.len(), "{config}");
            assert_eq!(by_value.stats().hits, by_ref.stats().hits, "{config}");
            assert_eq!(by_value.stats().misses, by_ref.stats().misses, "{config}");
        }
    }

    #[test]
    fn config_labels_and_parallel_upgrade() {
        assert_eq!(StoreConfig::Exact.to_string(), "exact");
        assert_eq!(
            StoreConfig::sharded().to_string(),
            format!("sharded({DEFAULT_SHARDS})")
        );
        assert_eq!(
            StoreConfig::fingerprint(32).to_string(),
            "fingerprint(32-bit)"
        );
        // The parallel engine silently upgrades single-lock stores.
        assert_eq!(StoreConfig::Exact.for_parallel(), StoreConfig::sharded());
        assert_eq!(
            StoreConfig::fingerprint(40).for_parallel(),
            StoreConfig::Fingerprint {
                bits: 40,
                shards: DEFAULT_SHARDS
            }
        );
        let striped = StoreConfig::Fingerprint {
            bits: 40,
            shards: 8,
        };
        assert_eq!(striped.for_parallel(), striped);
        assert!(StoreConfig::Exact.is_exact());
        assert!(!StoreConfig::fingerprint(32).is_exact());
        // The external-memory backend: probabilistic (64-bit fingerprints),
        // already thread-safe, labelled by its watermark.
        assert_eq!(
            StoreConfig::runs_with_watermark(512).to_string(),
            "runs(512)"
        );
        assert_eq!(StoreConfig::runs().for_parallel(), StoreConfig::runs());
        assert!(!StoreConfig::runs().is_exact());
    }
}
