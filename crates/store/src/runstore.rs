//! The external-memory visited set: a bloom front in RAM, sorted runs of
//! fingerprints on disk.
//!
//! The visited set is the structure that outgrows RAM first on
//! certification sweeps — every backend in this crate so far keeps at least
//! one word *per visited state* resident. [`RunStore`] breaks that bound:
//!
//! * recent fingerprints live in an in-memory **buffer** (a sorted set);
//! * when the buffer reaches the configured **watermark** it is flushed to
//!   a temporary file as one **sorted run** of delta-encoded fingerprints
//!   (see `docs/ON_DISK_FORMATS.md` in the repository for the exact byte
//!   layout);
//! * a **bloom filter** over everything spilled screens lookups: a bloom
//!   miss proves the fingerprint was never spilled, so the common case — a
//!   genuinely new state — touches no disk at all;
//! * a bloom *maybe* falls through to a binary search over each run's
//!   in-memory block index, reading back exactly one block per run.
//!
//! Lookup cost is O(runs) block reads in the worst case, so the engines
//! call [`StateStoreBackend::maintain`] at BFS level boundaries, which
//! merges all runs into one — lookups between boundaries stay cheap and
//! resident memory stays bounded by the bloom front, the buffer and one
//! block per run during the merge.
//!
//! Like [`crate::FingerprintStore`] at 64 bits, membership is decided on a
//! 64-bit hash of the key: `Verified` verdicts become probabilistic (see
//! the crate docs for the soundness contract), while counterexamples stay
//! exact.
//!
//! ```
//! use mp_store::{RunStore, StateStoreBackend};
//!
//! // A tiny watermark forces several sorted runs onto disk.
//! let store: RunStore<u64> = RunStore::new(128);
//! for k in 0..1000u64 {
//!     assert!(store.insert(k), "every key is new");
//! }
//! for k in 0..1000u64 {
//!     assert!(store.contains(&k), "spilled keys stay visible");
//! }
//! store.maintain(); // merge the runs (the engines do this per BFS level)
//! let stats = store.stats();
//! assert_eq!(stats.entries, 1000);
//! assert!(stats.spilled_bytes > 0, "runs went to disk");
//! assert!(stats.merge_bytes > 0, "maintain rewrote them as one run");
//! ```

use std::collections::BTreeSet;
use std::fs::File;
use std::hash::Hash;
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mp_model::{read_varint, write_varint};

use crate::backend::{StateStoreBackend, StoreStats};
use crate::frontier::{open_spill, spill_path};
use crate::sharded::hash64;

/// Default run-flush watermark: fingerprints buffered in RAM before a
/// sorted run is written out (~24 MiB of buffer at `BTreeSet` overheads).
pub const DEFAULT_RUN_WATERMARK: usize = 1 << 20;

/// Fingerprints per encoded block of a sorted run. One block is the unit
/// of disk read on a lookup and the granularity of the in-memory block
/// index.
const BLOCK_ENTRIES: usize = 256;

/// One block of a sorted run: `count` fingerprints starting at `first_fp`,
/// stored as `varint(count) varint(first_fp) varint(gap)*` at
/// `offset..offset+len` in the run file.
#[derive(Clone, Copy, Debug)]
struct Block {
    first_fp: u64,
    offset: u64,
    len: usize,
    count: usize,
}

/// One sorted run on disk plus its in-memory block index.
#[derive(Debug)]
struct Run {
    file: File,
    path: PathBuf,
    index: Vec<Block>,
    entries: usize,
}

impl Run {
    fn read_block(&mut self, block: Block) -> Vec<u64> {
        let mut raw = vec![0u8; block.len];
        self.file
            .seek(SeekFrom::Start(block.offset))
            .and_then(|_| self.file.read_exact(&mut raw))
            .unwrap_or_else(|e| panic!("run read from {}: {e}", self.path.display()));
        decode_block(&raw, block.count)
    }

    /// Binary-searches the block index and reads back at most one block.
    fn contains(&mut self, fp: u64) -> bool {
        // Last block whose first fingerprint is <= fp.
        let at = self.index.partition_point(|b| b.first_fp <= fp);
        if at == 0 {
            return false;
        }
        let block = self.index[at - 1];
        self.read_block(block).binary_search(&fp).is_ok()
    }
}

impl Drop for Run {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn decode_block(raw: &[u8], expected: usize) -> Vec<u64> {
    let mut input = raw;
    let count =
        read_varint(&mut input).unwrap_or_else(|e| panic!("corrupted run block: {e}")) as usize;
    assert_eq!(count, expected, "run block count disagrees with the index");
    let mut fps = Vec::with_capacity(count);
    let mut fp = 0u64;
    for i in 0..count {
        let delta = read_varint(&mut input).unwrap_or_else(|e| panic!("corrupted run block: {e}"));
        fp = if i == 0 { delta } else { fp + delta };
        fps.push(fp);
    }
    fps
}

/// Streams sorted fingerprints into a new run file, block by block, so a
/// merge never holds more than one output block in memory.
struct RunWriter {
    file: File,
    path: PathBuf,
    index: Vec<Block>,
    entries: usize,
    bytes: usize,
    block: Vec<u64>,
    scratch: Vec<u8>,
}

impl RunWriter {
    fn new() -> Self {
        let path = spill_path("mp-runstore");
        let file = open_spill(&path);
        RunWriter {
            file,
            path,
            index: Vec::new(),
            entries: 0,
            bytes: 0,
            block: Vec::with_capacity(BLOCK_ENTRIES),
            scratch: Vec::new(),
        }
    }

    fn push(&mut self, fp: u64) {
        self.block.push(fp);
        if self.block.len() == BLOCK_ENTRIES {
            self.flush_block();
        }
    }

    fn flush_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        self.scratch.clear();
        write_varint(self.block.len() as u64, &mut self.scratch);
        let mut prev = 0u64;
        for (i, fp) in self.block.iter().enumerate() {
            let delta = if i == 0 { *fp } else { fp - prev };
            write_varint(delta, &mut self.scratch);
            prev = *fp;
        }
        self.file
            .write_all(&self.scratch)
            .unwrap_or_else(|e| panic!("run write to {}: {e}", self.path.display()));
        self.index.push(Block {
            first_fp: self.block[0],
            offset: self.bytes as u64,
            len: self.scratch.len(),
            count: self.block.len(),
        });
        self.entries += self.block.len();
        self.bytes += self.scratch.len();
        self.block.clear();
    }

    fn finish(mut self) -> (Run, usize) {
        self.flush_block();
        let bytes = self.bytes;
        (
            Run {
                file: self.file,
                path: self.path,
                index: self.index,
                entries: self.entries,
            },
            bytes,
        )
    }
}

/// Reads one run's fingerprints back in order, one block resident at a
/// time — the merge-side cursor.
struct RunCursor {
    run: Run,
    block_at: usize,
    fps: Vec<u64>,
    pos: usize,
}

impl RunCursor {
    fn new(run: Run) -> Self {
        RunCursor {
            run,
            block_at: 0,
            fps: Vec::new(),
            pos: 0,
        }
    }

    fn peek(&mut self) -> Option<u64> {
        while self.pos >= self.fps.len() {
            if self.block_at >= self.run.index.len() {
                return None;
            }
            let block = self.run.index[self.block_at];
            self.block_at += 1;
            self.fps = self.run.read_block(block);
            self.pos = 0;
        }
        Some(self.fps[self.pos])
    }

    fn advance(&mut self) {
        self.pos += 1;
    }
}

#[derive(Debug)]
struct RunInner {
    /// Fingerprints not yet spilled, kept sorted for the next run flush.
    buffer: BTreeSet<u64>,
    /// Bit array over everything spilled; a clear probe proves absence.
    bloom: Vec<u64>,
    bloom_mask: u64,
    runs: Vec<Run>,
    watermark: usize,
    spilled_bytes: usize,
    merge_bytes: usize,
}

impl RunInner {
    fn bloom_slots(&self, fp: u64) -> [usize; 2] {
        let h1 = fp & self.bloom_mask;
        let h2 = fp.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(32) & self.bloom_mask;
        [h1 as usize, h2 as usize]
    }

    fn bloom_set(&mut self, fp: u64) {
        for slot in self.bloom_slots(fp) {
            self.bloom[slot >> 6] |= 1u64 << (slot & 63);
        }
    }

    fn bloom_maybe(&self, fp: u64) -> bool {
        self.bloom_slots(fp)
            .iter()
            .all(|slot| self.bloom[slot >> 6] & (1u64 << (slot & 63)) != 0)
    }

    fn spilled_contains(&mut self, fp: u64) -> bool {
        if !self.bloom_maybe(fp) {
            return false;
        }
        self.runs.iter_mut().any(|run| run.contains(fp))
    }

    fn flush_run(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut writer = RunWriter::new();
        for fp in std::mem::take(&mut self.buffer) {
            writer.push(fp);
        }
        let (run, bytes) = writer.finish();
        self.spilled_bytes += bytes;
        self.runs.push(run);
    }

    fn merge_runs(&mut self) -> usize {
        if self.runs.len() <= 1 {
            return 0;
        }
        let mut cursors: Vec<RunCursor> = std::mem::take(&mut self.runs)
            .into_iter()
            .map(RunCursor::new)
            .collect();
        let mut writer = RunWriter::new();
        loop {
            // Fingerprints are globally unique across runs, so a plain
            // min-scan merge needs no tie-breaking. Run counts are small
            // (one per watermark flush since the last boundary), so the
            // O(runs)-per-entry scan beats heap bookkeeping.
            let mut best: Option<(u64, usize)> = None;
            for (i, cursor) in cursors.iter_mut().enumerate() {
                if let Some(fp) = cursor.peek() {
                    if best.is_none_or(|(b, _)| fp < b) {
                        best = Some((fp, i));
                    }
                }
            }
            match best {
                Some((fp, i)) => {
                    cursors[i].advance();
                    writer.push(fp);
                }
                None => break,
            }
        }
        let (run, bytes) = writer.finish();
        self.merge_bytes += bytes;
        self.runs.push(run);
        bytes
    }
}

/// The external-memory visited set. See the module docs for the layout and
/// [`crate::StoreConfig::Runs`] for selecting it from a run configuration.
#[derive(Debug)]
pub struct RunStore<K> {
    inner: Mutex<RunInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    _key: PhantomData<fn(K) -> K>,
}

impl<K: Hash> RunStore<K> {
    /// Creates a store that flushes a sorted run every `watermark_entries`
    /// buffered fingerprints (minimum 1). The bloom front is sized at 64
    /// bits per watermark entry, rounded up to a power of two.
    pub fn new(watermark_entries: usize) -> Self {
        let watermark = watermark_entries.max(1);
        let bloom_bits = (watermark * 64).next_power_of_two().max(1 << 12);
        RunStore {
            inner: Mutex::new(RunInner {
                buffer: BTreeSet::new(),
                bloom: vec![0u64; bloom_bits / 64],
                bloom_mask: (bloom_bits - 1) as u64,
                runs: Vec::new(),
                watermark,
                spilled_bytes: 0,
                merge_bytes: 0,
            }),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            _key: PhantomData,
        }
    }

    /// The configured run-flush watermark, in fingerprints.
    pub fn watermark(&self) -> usize {
        self.inner.lock().expect("run store poisoned").watermark
    }

    /// Number of sorted runs currently on disk (drops back to one after
    /// [`StateStoreBackend::maintain`]).
    pub fn run_count(&self) -> usize {
        self.inner.lock().expect("run store poisoned").runs.len()
    }

    fn record(&self, present: bool) {
        if present {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn insert_fp(&self, fp: u64) -> bool {
        let mut inner = self.inner.lock().expect("run store poisoned");
        if inner.buffer.contains(&fp) || inner.spilled_contains(fp) {
            drop(inner);
            self.record(true);
            return false;
        }
        inner.buffer.insert(fp);
        if inner.buffer.len() >= inner.watermark {
            // Set the bloom bits before the flush consumes the buffer.
            let fps: Vec<u64> = inner.buffer.iter().copied().collect();
            for fp in fps {
                inner.bloom_set(fp);
            }
            inner.flush_run();
        }
        drop(inner);
        self.record(false);
        true
    }
}

impl<K: Hash> StateStoreBackend<K> for RunStore<K> {
    fn insert(&self, key: K) -> bool {
        self.insert_fp(hash64(&key))
    }

    fn insert_ref(&self, key: &K) -> bool
    where
        K: Clone,
    {
        // Only the hash is stored — no clone, ever.
        self.insert_fp(hash64(key))
    }

    fn contains(&self, key: &K) -> bool {
        let fp = hash64(key);
        let mut inner = self.inner.lock().expect("run store poisoned");
        let present = inner.buffer.contains(&fp) || inner.spilled_contains(fp);
        drop(inner);
        self.record(present);
        present
    }

    fn len(&self) -> usize {
        let inner = self.inner.lock().expect("run store poisoned");
        inner.buffer.len() + inner.runs.iter().map(|r| r.entries).sum::<usize>()
    }

    fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("run store poisoned");
        let entries = inner.buffer.len() + inner.runs.iter().map(|r| r.entries).sum::<usize>();
        // Resident bytes: the bloom bit array, the buffered fingerprints
        // (BTreeSet nodes cost roughly three words per u64 entry), and the
        // block indices. The run payloads themselves live on disk and are
        // deliberately *not* counted here — that is the whole point.
        let approx_bytes = inner.bloom.len() * 8
            + inner.buffer.len() * 3 * std::mem::size_of::<u64>()
            + inner
                .runs
                .iter()
                .map(|r| r.index.len() * std::mem::size_of::<Block>())
                .sum::<usize>();
        StoreStats {
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            approx_bytes,
            spilled_bytes: inner.spilled_bytes,
            merge_bytes: inner.merge_bytes,
        }
    }

    fn name(&self) -> &'static str {
        "runs"
    }

    fn maintain(&self) {
        let mut inner = self.inner.lock().expect("run store poisoned");
        inner.merge_runs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn spilled_and_buffered_keys_agree_with_exact_semantics() {
        let input = keys(5_000, 11);
        let store: RunStore<u64> = RunStore::new(256);
        for k in &input {
            assert!(store.insert(*k), "first insert of {k} is new");
        }
        for k in &input {
            assert!(!store.insert(*k), "re-insert of {k} is a hit");
            assert!(store.contains(k));
        }
        assert_eq!(store.len(), input.len());
        assert!(store.run_count() > 1, "the tiny watermark must multi-run");
        let stats = store.stats();
        assert_eq!(stats.entries, input.len());
        assert_eq!(stats.hits, 2 * input.len());
        assert_eq!(stats.misses, input.len());
        assert!(stats.spilled_bytes > 0);
    }

    #[test]
    fn maintain_merges_runs_and_preserves_membership() {
        let input = keys(3_000, 23);
        let store: RunStore<u64> = RunStore::new(200);
        for k in &input {
            store.insert(*k);
        }
        let runs_before = store.run_count();
        assert!(runs_before > 1);
        store.maintain();
        assert_eq!(store.run_count(), 1, "maintain leaves a single run");
        for k in &input {
            assert!(store.contains(k), "membership survives the merge");
        }
        assert_eq!(store.len(), input.len());
        let stats = store.stats();
        assert!(stats.merge_bytes > 0, "the merge was accounted");
        // A second maintain with one run is a no-op.
        store.maintain();
        assert_eq!(store.stats().merge_bytes, stats.merge_bytes);
    }

    #[test]
    fn absent_keys_stay_absent_through_spills_and_merges() {
        let present = keys(2_000, 5);
        let absent = keys(2_000, 6);
        let store: RunStore<u64> = RunStore::new(128);
        for k in &present {
            store.insert(*k);
        }
        store.maintain();
        let absent: Vec<u64> = absent
            .into_iter()
            .filter(|k| !present.contains(k))
            .collect();
        for k in &absent {
            assert!(!store.contains(k), "{k} was never inserted");
        }
    }

    #[test]
    fn resident_bytes_stay_bounded_while_spill_grows() {
        let store: RunStore<u64> = RunStore::new(512);
        for k in keys(50_000, 77) {
            store.insert(k);
            store.maintain();
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 50_000);
        assert!(
            stats.approx_bytes < stats.spilled_bytes,
            "resident ({}) must undercut cumulative spill ({})",
            stats.approx_bytes,
            stats.spilled_bytes
        );
        // The dominant resident cost is the fixed bloom front, not a
        // per-entry table: 50k entries at 8B each would be 400kB; the
        // bloom for a 512-entry watermark is 32k bits = 4kB plus indices.
        assert!(stats.approx_bytes < 50_000 * 8);
    }

    #[test]
    fn blocks_round_trip_through_the_delta_encoding() {
        let mut writer = RunWriter::new();
        let fps: Vec<u64> = (0..1000u64).map(|i| i * i * 7919).collect();
        for fp in &fps {
            writer.push(*fp);
        }
        let (mut run, bytes) = writer.finish();
        assert!(bytes > 0);
        assert_eq!(run.entries, fps.len());
        let mut decoded = Vec::new();
        for block in run.index.clone() {
            decoded.extend(run.read_block(block));
        }
        assert_eq!(decoded, fps);
        for fp in &fps {
            assert!(run.contains(*fp));
        }
        assert!(!run.contains(3));
    }
}
