//! The lock-striped concurrent backend.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::backend::{table_bytes, StateStoreBackend, StoreStats};

/// An exact visited-state set striped across N shards.
///
/// The shard is selected by the top bits of the key's 64-bit hash (the
/// "hash prefix"), so concurrent inserters only contend when they land on
/// the same shard. With the default of 64 shards and a handful of worker
/// threads, contention on any single mutex is negligible and the parallel
/// BFS engine inserts without a global lock on the visited set.
///
/// Semantics are identical to [`crate::ExactStore`]: full keys are stored,
/// no omissions are possible.
#[derive(Debug)]
pub struct ShardedStore<K> {
    shards: Vec<Mutex<HashSet<K>>>,
    shard_bits: u32,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

pub(crate) fn hash64<K: Hash>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

impl<K: Eq + Hash> ShardedStore<K> {
    /// Creates a store with `shards` stripes (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedStore {
            shards: (0..shards).map(|_| Mutex::new(HashSet::new())).collect(),
            shard_bits: shards.trailing_zeros(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &K) -> &Mutex<HashSet<K>> {
        // Top bits of the hash: the low bits keep their entropy for the
        // in-shard hash table.
        let index = if self.shard_bits == 0 {
            0
        } else {
            (hash64(key) >> (64 - self.shard_bits)) as usize
        };
        &self.shards[index]
    }

    fn record(&self, present: bool) {
        if present {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<K: Eq + Hash> StateStoreBackend<K> for ShardedStore<K> {
    fn insert(&self, key: K) -> bool {
        let new = self.shard(&key).lock().expect("shard poisoned").insert(key);
        self.record(!new);
        new
    }

    fn insert_ref(&self, key: &K) -> bool
    where
        K: Clone,
    {
        let mut shard = self.shard(key).lock().expect("shard poisoned");
        let new = if shard.contains(key) {
            false
        } else {
            shard.insert(key.clone())
        };
        drop(shard);
        self.record(!new);
        new
    }

    fn contains(&self, key: &K) -> bool {
        let present = self
            .shard(key)
            .lock()
            .expect("shard poisoned")
            .contains(key);
        self.record(present);
        present
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    fn stats(&self) -> StoreStats {
        let mut entries = 0;
        let mut approx_bytes = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            entries += shard.len();
            approx_bytes += table_bytes(shard.capacity(), size_of::<K>());
        }
        StoreStats {
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            approx_bytes,
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_is_a_power_of_two() {
        assert_eq!(ShardedStore::<u64>::new(0).shard_count(), 1);
        assert_eq!(ShardedStore::<u64>::new(1).shard_count(), 1);
        assert_eq!(ShardedStore::<u64>::new(3).shard_count(), 4);
        assert_eq!(ShardedStore::<u64>::new(64).shard_count(), 64);
    }

    #[test]
    fn single_shard_behaves_like_exact() {
        let store = ShardedStore::new(1);
        assert!(store.insert(1u32));
        assert!(!store.insert(1));
        assert!(store.contains(&1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().hits, 2);
    }

    #[test]
    fn keys_spread_across_shards() {
        let store = ShardedStore::new(16);
        for k in 0u64..1_000 {
            store.insert(k);
        }
        assert_eq!(store.len(), 1_000);
        let populated = store
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(
            populated > 8,
            "hash prefix must spread keys, got {populated} shards"
        );
    }
}
