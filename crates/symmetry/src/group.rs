//! Validated symmetry groups over a concrete protocol.

use std::collections::BTreeSet;
use std::marker::PhantomData;

use mp_model::{
    LocalState, Message, Permutable, Permutation, ProcessId, ProtocolSpec, RecipientSet,
    TransitionId, TransitionInstance, TransitionSpec,
};

use crate::RoleMap;

/// Hard cap on the candidate group order; declarations beyond this are a
/// modelling mistake (canonicalization enumerates the whole group per state).
pub const MAX_GROUP_ORDER: usize = 40_320; // 8!

/// One validated element of a [`SymmetryGroup`]: a process permutation plus
/// the induced transition-id relabelling (`transitions[t]` is the transition
/// of the image process that corresponds to `t`).
#[derive(Clone, Debug)]
pub struct GroupElement {
    pub(crate) perm: Permutation,
    pub(crate) transitions: Vec<TransitionId>,
}

impl GroupElement {
    /// The process permutation of this element.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// The transition `t` corresponds to under this element.
    pub fn map_transition(&self, t: TransitionId) -> TransitionId {
        self.transitions[t.index()]
    }
}

/// A group of process permutations validated against one protocol.
///
/// Built by [`SymmetryGroup::build`] from a [`RoleMap`] declaration: every
/// candidate permutation (a product of within-role permutations) is kept
/// only if it maps the protocol onto itself **structurally**:
///
/// * the initial state is a fixed point (distinct initial local states of
///   role members — e.g. acceptors seeded with different accepted values —
///   degenerate the group toward identity);
/// * the transition lists of a process and its image align positionally,
///   with equal inputs, quorums and annotations, and with sender/recipient
///   sets mapped through the permutation.
///
/// Structural validation catches asymmetric wiring and asymmetric initial
/// states. It cannot inspect guard/effect closures, so declaring a role
/// asserts that the members' transition *semantics* are interchangeable too
/// (which holds for roles built in a loop over the role's processes, the
/// construction every bundled protocol uses). The soundness tests in
/// `tests/symmetry.rs` check the declarations shipped with `mp-protocols`
/// by comparing reduced and unreduced verdicts.
///
/// The validated set is closed under composition and inverse (both preserve
/// every check), so it is a genuine subgroup; element `0` is always the
/// identity.
pub struct SymmetryGroup<S, M: Ord> {
    elements: Vec<GroupElement>,
    _marker: PhantomData<fn() -> (S, M)>,
}

impl<S, M> SymmetryGroup<S, M>
where
    S: LocalState + Permutable,
    M: Message + Permutable,
{
    /// Builds the validated group of `roles` over `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the role map's process count does not match the protocol,
    /// or if the candidate order exceeds [`MAX_GROUP_ORDER`].
    pub fn build(spec: &ProtocolSpec<S, M>, roles: &RoleMap) -> Self {
        assert_eq!(
            roles.num_processes(),
            spec.num_processes(),
            "role map declared for {} processes but the protocol has {}",
            roles.num_processes(),
            spec.num_processes()
        );
        assert!(
            roles.candidate_order() <= MAX_GROUP_ORDER,
            "candidate group order {} exceeds the {MAX_GROUP_ORDER} cap",
            roles.candidate_order()
        );

        let initial = spec.initial_state();
        let mut elements = vec![GroupElement {
            perm: Permutation::identity(spec.num_processes()),
            transitions: spec.transition_ids().collect(),
        }];
        for perm in candidate_permutations(roles) {
            if perm.is_identity() {
                continue;
            }
            if initial.permute(&perm) != initial {
                continue;
            }
            if let Some(transitions) = transition_map(spec, &perm) {
                elements.push(GroupElement { perm, transitions });
            }
        }
        SymmetryGroup {
            elements,
            _marker: PhantomData,
        }
    }

    /// The trivial (identity-only) group for a system of `n` processes.
    pub fn identity(spec: &ProtocolSpec<S, M>) -> Self {
        SymmetryGroup {
            elements: vec![GroupElement {
                perm: Permutation::identity(spec.num_processes()),
                transitions: spec.transition_ids().collect(),
            }],
            _marker: PhantomData,
        }
    }

    /// Number of validated elements (1 = identity only, no reduction).
    pub fn order(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if only the identity survived validation.
    pub fn is_trivial(&self) -> bool {
        self.elements.len() == 1
    }

    /// The validated elements; element `0` is the identity.
    pub fn elements(&self) -> &[GroupElement] {
        &self.elements
    }

    /// Index of the element whose permutation equals `perm`, if validated.
    pub fn element_index(&self, perm: &Permutation) -> Option<usize> {
        self.elements.iter().position(|e| &e.perm == perm)
    }

    /// The composition `a ∘ b` (apply `b` first) as an element index.
    ///
    /// # Panics
    ///
    /// Panics if the composition is not in the group — impossible for
    /// elements of the same validated group (it is closed).
    pub fn compose(&self, a: usize, b: usize) -> usize {
        let perm = self.elements[a].perm.compose(&self.elements[b].perm);
        self.element_index(&perm)
            .expect("a validated group is closed under composition")
    }

    /// The inverse of element `e`.
    pub fn inverse(&self, e: usize) -> usize {
        let perm = self.elements[e].perm.inverse();
        self.element_index(&perm)
            .expect("a validated group is closed under inverse")
    }

    /// Applies element `e` to a transition instance: the transition id is
    /// relabelled to the image process's corresponding transition, the
    /// executing process and envelope senders are mapped, payloads are
    /// rewritten.
    pub fn permute_instance(
        &self,
        e: usize,
        instance: &TransitionInstance<M>,
    ) -> TransitionInstance<M> {
        let elem = &self.elements[e];
        TransitionInstance::new(
            elem.map_transition(instance.transition),
            elem.perm.apply(instance.process),
            instance
                .envelopes
                .iter()
                .map(|env| {
                    mp_model::Envelope::new(
                        elem.perm.apply(env.sender),
                        env.payload.permute(&elem.perm),
                    )
                })
                .collect(),
        )
    }
}

/// All products of within-role permutations (including the identity).
fn candidate_permutations(roles: &RoleMap) -> Vec<Permutation> {
    let n = roles.num_processes();
    let mut out = vec![Permutation::identity(n)];
    for role in roles.roles() {
        let orders = permutations_of(role.len());
        let mut next = Vec::with_capacity(out.len() * orders.len());
        for base in &out {
            for order in &orders {
                // Rearrange the role's slots according to `order`: member i
                // moves to the slot of member order[i].
                let mut map: Vec<usize> = (0..n).collect();
                for (i, &slot) in order.iter().enumerate() {
                    map[role[i].index()] = role[slot].index();
                }
                let perm = Permutation::from_map(map).expect("role rearrangement is a bijection");
                next.push(perm.compose(base));
            }
        }
        out = next;
    }
    out
}

/// All orderings of `0..k` (plain recursive enumeration; role sizes are
/// bounded by [`MAX_GROUP_ORDER`]).
fn permutations_of(k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for smaller in permutations_of(k - 1) {
        for slot in 0..=smaller.len() {
            let mut next = smaller.clone();
            next.insert(slot, k - 1);
            out.push(next);
        }
    }
    out
}

/// Builds the transition relabelling induced by `perm`, or `None` if some
/// transition has no structural correspondent.
fn transition_map<S, M>(spec: &ProtocolSpec<S, M>, perm: &Permutation) -> Option<Vec<TransitionId>>
where
    S: LocalState,
    M: Message,
{
    let mut map = vec![TransitionId(0); spec.num_transitions()];
    for p in spec.processes() {
        let from = spec.transitions_of(p);
        let to = spec.transitions_of(perm.apply(p));
        if from.len() != to.len() {
            return None;
        }
        for (&t, &u) in from.iter().zip(to.iter()) {
            if !corresponds(spec.transition(t), spec.transition(u), perm) {
                return None;
            }
            map[t.index()] = u;
        }
    }
    Some(map)
}

/// Structural correspondence of two transitions under `perm`: equal inputs
/// and annotations, with process sets mapped through the permutation.
fn corresponds<S, M>(t: &TransitionSpec<S, M>, u: &TransitionSpec<S, M>, perm: &Permutation) -> bool
where
    S: LocalState,
    M: Message,
{
    if t.input() != u.input() {
        return false;
    }
    let mapped_senders: Option<BTreeSet<ProcessId>> = t
        .allowed_senders()
        .map(|s| s.iter().map(|p| perm.apply(*p)).collect());
    if mapped_senders.as_ref() != u.allowed_senders() {
        return false;
    }
    let mut mapped = t.annotations().clone();
    if let RecipientSet::Only(set) = &mapped.recipients {
        mapped.recipients = RecipientSet::Only(set.iter().map(|p| perm.apply(*p)).collect());
    }
    mapped == *u.annotations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Outcome, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    impl Permutable for Tok {
        fn permute(&self, _perm: &Permutation) -> Self {
            Tok
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// `n` interchangeable counters with the given initial values.
    fn counters(initials: &[u8]) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("counters");
        for (i, &init) in initials.iter().enumerate() {
            builder = builder.process(format!("c{i}"), init);
        }
        for i in 0..initials.len() {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), p(i))
                    .internal()
                    .guard(|l, _| *l < 2)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn symmetric_counters_validate_the_full_role_group() {
        let spec = counters(&[0, 0, 0]);
        let roles = RoleMap::new(3).role([p(0), p(1), p(2)]);
        let group = SymmetryGroup::build(&spec, &roles);
        assert_eq!(group.order(), 6);
        assert!(!group.is_trivial());
        // Closure: composing any two elements stays inside.
        for a in 0..group.order() {
            for b in 0..group.order() {
                let _ = group.compose(a, b);
            }
            let inv = group.inverse(a);
            assert_eq!(group.compose(a, inv), 0, "e ∘ e⁻¹ = identity");
        }
    }

    #[test]
    fn distinct_initial_values_degenerate_to_identity() {
        let spec = counters(&[0, 1]);
        let roles = RoleMap::new(2).role([p(0), p(1)]);
        let group = SymmetryGroup::build(&spec, &roles);
        assert!(
            group.is_trivial(),
            "asymmetric initial states must reject the swap"
        );
    }

    #[test]
    fn partial_symmetry_survives() {
        // p0 and p1 symmetric, p2 starts differently: only the 0<->1 swap
        // validates.
        let spec = counters(&[0, 0, 1]);
        let roles = RoleMap::new(3).role([p(0), p(1), p(2)]);
        let group = SymmetryGroup::build(&spec, &roles);
        assert_eq!(group.order(), 2);
    }

    #[test]
    fn asymmetric_transition_structure_is_rejected() {
        // p1 has an extra transition: the swap cannot align the lists.
        let spec: ProtocolSpec<u8, Tok> = ProtocolSpec::builder("uneven")
            .process("a", 0u8)
            .process("b", 0u8)
            .transition(
                TransitionSpec::builder("ta", p(0))
                    .internal()
                    .sends_nothing()
                    .guard(|l, _| *l == 0)
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("tb", p(1))
                    .internal()
                    .sends_nothing()
                    .guard(|l, _| *l == 0)
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("tb2", p(1))
                    .internal()
                    .sends_nothing()
                    .guard(|l, _| *l == 1)
                    .effect(|_, _| Outcome::new(2))
                    .build(),
            )
            .build()
            .unwrap();
        let roles = RoleMap::new(2).role([p(0), p(1)]);
        assert!(SymmetryGroup::build(&spec, &roles).is_trivial());
    }

    #[test]
    fn instance_permutation_relabels_transition_and_senders() {
        let spec = counters(&[0, 0]);
        let roles = RoleMap::new(2).role([p(0), p(1)]);
        let group = SymmetryGroup::build(&spec, &roles);
        assert_eq!(group.order(), 2);
        let swap = 1usize;
        let inst = TransitionInstance::<Tok>::new(TransitionId(0), p(0), Vec::new());
        let mapped = group.permute_instance(swap, &inst);
        assert_eq!(mapped.process, p(1));
        assert_eq!(mapped.transition, TransitionId(1));
        assert_eq!(
            spec.transition(mapped.transition).name(),
            "step1",
            "step0@p0 maps to step1@p1"
        );
    }
}
