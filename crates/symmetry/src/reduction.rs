//! The engine-facing symmetry interface.
//!
//! `mp-checker`'s engines are generic over state, message and observer
//! types and must not force [`Permutable`] bounds onto every protocol; they
//! therefore program against the object-safe [`Symmetry`] trait. Two
//! implementations exist:
//!
//! * [`NoSymmetry`] — the default: trivial, and the engines skip every
//!   symmetry code path (zero cost, byte-identical exploration);
//! * [`OrbitReduction`] — canonicalizes `(state, observer)` pairs under a
//!   validated [`SymmetryGroup`], turning the visited set into a set of
//!   **orbit representatives**.
//!
//! The engines keep exploring *concrete* states and only canonicalize the
//! **keys** they insert into the visited store: when a successor's orbit
//! was already visited, some symmetric sibling's subtree has been (or is
//! being) explored, and — provided the property is invariant under the
//! group, which the validated role declarations assert — its verdict covers
//! the pruned sibling. Safety counterexamples therefore remain fully
//! concrete with no un-canonicalization step; liveness cycles that close
//! *modulo* a permutation are un-canonicalized by unrolling the closing
//! element (see `mp-checker`'s liveness engine).

use std::marker::PhantomData;
use std::sync::Arc;

use mp_model::{GlobalState, LocalState, Message, Permutable, TransitionInstance};
use mp_trace::{Histogram, Phase, TraceHandle};

use crate::SymmetryGroup;

/// Object-safe symmetry interface consumed by the search engines.
///
/// Element indices refer to the underlying validated group; index `0` is
/// always the identity.
pub trait Symmetry<S, M: Ord, O>: Send + Sync {
    /// `true` if the group is identity-only; engines then skip every
    /// symmetry code path.
    fn is_trivial(&self) -> bool;

    /// Order of the validated group (1 = trivial).
    fn order(&self) -> usize;

    /// Returns the canonical (minimal under `Ord`) image of
    /// `(state, observer)` over the whole group, together with the index of
    /// the element that produced it.
    fn canonicalize(
        &self,
        state: &GlobalState<S, M>,
        observer: &O,
    ) -> (GlobalState<S, M>, O, usize);

    /// Number of *distinct* images of `(state, observer)` under the group —
    /// the size of its orbit (1 for the trivial group or a fully symmetric
    /// pair). Costs one extra group sweep, so engines only call it when
    /// tracing is enabled.
    fn orbit_size(&self, _state: &GlobalState<S, M>, _observer: &O) -> usize {
        1
    }

    /// [`Symmetry::canonicalize`] with observability: times the group sweep
    /// under [`Phase::Canonicalize`] and records the orbit size into the
    /// orbit histogram. A disabled handle makes this identical to
    /// `canonicalize` (no clock read, no extra sweep).
    fn canonicalize_traced(
        &self,
        state: &GlobalState<S, M>,
        observer: &O,
        trace: &TraceHandle,
    ) -> (GlobalState<S, M>, O, usize) {
        let result = {
            let _span = trace.span(Phase::Canonicalize);
            self.canonicalize(state, observer)
        };
        if trace.is_enabled() {
            trace.record(
                Histogram::OrbitSize,
                self.orbit_size(state, observer) as u64,
            );
        }
        result
    }

    /// The composition `a ∘ b` (apply `b` first) as an element index.
    fn compose(&self, a: usize, b: usize) -> usize;

    /// The inverse of element `e`.
    fn inverse(&self, e: usize) -> usize;

    /// Applies element `e` to a `(state, observer)` pair.
    ///
    /// This is what lets a disk-spilled frontier hold canonical orbit
    /// representatives: the BFS engines enqueue
    /// `canonicalize(s) = (ŝ, δ)` and recover the concrete state on
    /// dequeue as `apply_element(inverse(δ), ŝ)`, so exploration and
    /// counterexample paths stay concrete.
    fn apply_element(
        &self,
        e: usize,
        state: &GlobalState<S, M>,
        observer: &O,
    ) -> (GlobalState<S, M>, O);

    /// Applies element `e` to a transition instance (relabelling the
    /// transition id to the image process's corresponding transition).
    fn permute_instance(&self, e: usize, instance: &TransitionInstance<M>)
        -> TransitionInstance<M>;

    /// Short label appended to engine strategy names (`"sym(k)"`).
    fn label(&self) -> String;
}

/// The trivial symmetry: identity only. The default of every checker run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSymmetry;

impl<S, M, O> Symmetry<S, M, O> for NoSymmetry
where
    S: Clone + Send + Sync,
    M: Ord + Clone + Send + Sync,
    O: Clone + Send + Sync,
{
    fn is_trivial(&self) -> bool {
        true
    }

    fn order(&self) -> usize {
        1
    }

    fn canonicalize(
        &self,
        state: &GlobalState<S, M>,
        observer: &O,
    ) -> (GlobalState<S, M>, O, usize) {
        (state.clone(), observer.clone(), 0)
    }

    fn compose(&self, _a: usize, _b: usize) -> usize {
        0
    }

    fn inverse(&self, _e: usize) -> usize {
        0
    }

    fn apply_element(
        &self,
        _e: usize,
        state: &GlobalState<S, M>,
        observer: &O,
    ) -> (GlobalState<S, M>, O) {
        (state.clone(), observer.clone())
    }

    fn permute_instance(
        &self,
        _e: usize,
        instance: &TransitionInstance<M>,
    ) -> TransitionInstance<M> {
        instance.clone()
    }

    fn label(&self) -> String {
        "none".to_string()
    }
}

/// Orbit canonicalization under a validated [`SymmetryGroup`].
///
/// The canonical representative of a pair is its minimal image under `Ord`
/// across all group elements — a total, deterministic choice, so two states
/// of the same orbit always produce the same key.
pub struct OrbitReduction<S, M: Ord, O> {
    group: Arc<SymmetryGroup<S, M>>,
    _marker: PhantomData<fn() -> O>,
}

impl<S, M, O> OrbitReduction<S, M, O>
where
    S: LocalState + Permutable,
    M: Message + Permutable,
{
    /// Wraps a validated group.
    pub fn new(group: SymmetryGroup<S, M>) -> Self {
        OrbitReduction {
            group: Arc::new(group),
            _marker: PhantomData,
        }
    }

    /// The underlying group.
    pub fn group(&self) -> &SymmetryGroup<S, M> {
        &self.group
    }
}

impl<S, M, O> Clone for OrbitReduction<S, M, O>
where
    M: Ord,
{
    fn clone(&self) -> Self {
        OrbitReduction {
            group: self.group.clone(),
            _marker: PhantomData,
        }
    }
}

impl<S, M, O> Symmetry<S, M, O> for OrbitReduction<S, M, O>
where
    S: LocalState + Permutable,
    M: Message + Permutable,
    O: Permutable + Ord + Clone + Send + Sync + 'static,
{
    fn is_trivial(&self) -> bool {
        self.group.is_trivial()
    }

    fn order(&self) -> usize {
        self.group.order()
    }

    fn canonicalize(
        &self,
        state: &GlobalState<S, M>,
        observer: &O,
    ) -> (GlobalState<S, M>, O, usize) {
        let mut best_state = state.clone();
        let mut best_observer = observer.clone();
        let mut best = 0usize;
        for (i, elem) in self.group.elements().iter().enumerate().skip(1) {
            let candidate_state = state.permute(elem.permutation());
            let candidate_observer = observer.permute(elem.permutation());
            if (&candidate_state, &candidate_observer) < (&best_state, &best_observer) {
                best_state = candidate_state;
                best_observer = candidate_observer;
                best = i;
            }
        }
        (best_state, best_observer, best)
    }

    fn orbit_size(&self, state: &GlobalState<S, M>, observer: &O) -> usize {
        let mut images: Vec<(GlobalState<S, M>, O)> = self
            .group
            .elements()
            .iter()
            .map(|elem| {
                (
                    state.permute(elem.permutation()),
                    observer.permute(elem.permutation()),
                )
            })
            .collect();
        images.sort_unstable();
        images.dedup();
        images.len()
    }

    fn compose(&self, a: usize, b: usize) -> usize {
        self.group.compose(a, b)
    }

    fn inverse(&self, e: usize) -> usize {
        self.group.inverse(e)
    }

    fn apply_element(
        &self,
        e: usize,
        state: &GlobalState<S, M>,
        observer: &O,
    ) -> (GlobalState<S, M>, O) {
        let perm = self.group.elements()[e].permutation();
        (state.permute(perm), observer.permute(perm))
    }

    fn permute_instance(
        &self,
        e: usize,
        instance: &TransitionInstance<M>,
    ) -> TransitionInstance<M> {
        self.group.permute_instance(e, instance)
    }

    fn label(&self) -> String {
        format!("sym({})", self.group.order())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoleMap;
    use mp_model::{Kind, Outcome, Permutation, ProcessId, ProtocolSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    impl Permutable for Tok {
        fn permute(&self, _perm: &Permutation) -> Self {
            Tok
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn twins() -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("twins");
        for i in 0..2 {
            builder = builder.process(format!("t{i}"), 0u8);
        }
        for i in 0..2 {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), p(i))
                    .internal()
                    .guard(|l, _| *l < 3)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn canonical_keys_identify_orbit_members() {
        let spec = twins();
        let group = SymmetryGroup::build(&spec, &RoleMap::new(2).role([p(0), p(1)]));
        let reduction: OrbitReduction<u8, Tok, ()> = OrbitReduction::new(group);
        let mut a = spec.initial_state();
        a.locals = vec![2, 0];
        let mut b = spec.initial_state();
        b.locals = vec![0, 2];
        let (ca, _, ea) = Symmetry::<u8, Tok, ()>::canonicalize(&reduction, &a, &());
        let (cb, _, eb) = Symmetry::<u8, Tok, ()>::canonicalize(&reduction, &b, &());
        assert_eq!(ca, cb, "orbit members share a canonical representative");
        assert_ne!(ea, eb, "one of the two needed the swap");
        // The representative is itself a member of the orbit.
        assert!(ca == a || ca == b);
        assert!(Symmetry::<u8, Tok, ()>::label(&reduction).contains("sym(2)"));
    }

    #[test]
    fn apply_inverse_element_undoes_canonicalization() {
        let spec = twins();
        let group = SymmetryGroup::build(&spec, &RoleMap::new(2).role([p(0), p(1)]));
        let reduction: OrbitReduction<u8, Tok, ()> = OrbitReduction::new(group);
        let sym: &dyn Symmetry<u8, Tok, ()> = &reduction;
        let mut concrete = spec.initial_state();
        concrete.locals = vec![3, 1];
        let (canonical, _, delta) = sym.canonicalize(&concrete, &());
        // This is the spillable-frontier contract: the canonical
        // representative plus δ⁻¹ recovers the concrete state exactly.
        let (back, _) = sym.apply_element(sym.inverse(delta), &canonical, &());
        assert_eq!(back, concrete);
        // NoSymmetry's apply is the identity.
        let nosym: &dyn Symmetry<u8, Tok, ()> = &NoSymmetry;
        let (same, _) = nosym.apply_element(0, &concrete, &());
        assert_eq!(same, concrete);
    }

    #[test]
    fn orbit_size_counts_distinct_images_and_traced_form_records_it() {
        use mp_trace::{Histogram, Phase, SharedBuffer, Tracer};
        let spec = twins();
        let group = SymmetryGroup::build(&spec, &RoleMap::new(2).role([p(0), p(1)]));
        let reduction: OrbitReduction<u8, Tok, ()> = OrbitReduction::new(group);
        let sym: &dyn Symmetry<u8, Tok, ()> = &reduction;
        let mut asymmetric = spec.initial_state();
        asymmetric.locals = vec![2, 0];
        assert_eq!(sym.orbit_size(&asymmetric, &()), 2);
        // The all-equal state is fixed by the swap: a singleton orbit.
        assert_eq!(sym.orbit_size(&spec.initial_state(), &()), 1);

        let tracer = Tracer::to_writer(false, Box::new(SharedBuffer::new()));
        let run = tracer.begin_run("twins", "test", "p");
        let (c1, _, e1) = sym.canonicalize(&asymmetric, &());
        let (c2, _, e2) = sym.canonicalize_traced(&asymmetric, &(), &run.handle());
        assert_eq!(c1, c2, "traced form must not change the representative");
        assert_eq!(e1, e2);
        let snap = run.snapshot();
        assert_eq!(snap.histogram(Histogram::OrbitSize).count, 1);
        assert_eq!(snap.histogram(Histogram::OrbitSize).max, 2);
        assert!(snap.phases.nanos(Phase::Canonicalize) > 0);
        run.finish("verified");
    }

    #[test]
    fn no_symmetry_is_trivial_and_identity() {
        let spec = twins();
        let state = spec.initial_state();
        let sym: &dyn Symmetry<u8, Tok, ()> = &NoSymmetry;
        assert!(sym.is_trivial());
        let (c, _, e) = sym.canonicalize(&state, &());
        assert_eq!(c, state);
        assert_eq!(e, 0);
    }
}
