//! Role declarations: which processes a protocol considers interchangeable.

use std::collections::BTreeSet;

use mp_model::ProcessId;

/// A declaration of interchangeable process *roles*.
///
/// A role is a set of processes the protocol treats identically — the
/// acceptors of Paxos, the base objects of a replicated register. Processes
/// not mentioned in any role are fixed points (the Paxos proposer and
/// learner stay where they are). The candidate symmetry group is the direct
/// product of the full symmetric groups on each role; the
/// [`SymmetryGroup`](crate::SymmetryGroup) *validates* every candidate
/// against the actual protocol structure and silently drops the invalid
/// ones, so an over-eager declaration degenerates instead of corrupting the
/// search.
///
/// # Examples
///
/// ```
/// use mp_model::ProcessId;
/// use mp_symmetry::RoleMap;
///
/// // Paxos (1,2,1): proposer p0 fixed, acceptors p1/p2 interchangeable,
/// // learner p3 fixed.
/// let roles = RoleMap::new(4).role([ProcessId(1), ProcessId(2)]);
/// assert_eq!(roles.candidate_order(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoleMap {
    num_processes: usize,
    roles: Vec<Vec<ProcessId>>,
}

impl RoleMap {
    /// Starts a declaration for a system of `num_processes` processes with
    /// no interchangeable roles (every process a fixed point).
    pub fn new(num_processes: usize) -> Self {
        RoleMap {
            num_processes,
            roles: Vec::new(),
        }
    }

    /// Declares the given processes interchangeable (builder style). Roles
    /// of fewer than two members add no symmetry and are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a member is out of range or already part of another role.
    pub fn role<I: IntoIterator<Item = ProcessId>>(mut self, members: I) -> Self {
        let members: Vec<ProcessId> = members.into_iter().collect();
        let distinct: BTreeSet<ProcessId> = members.iter().copied().collect();
        assert_eq!(distinct.len(), members.len(), "duplicate role member");
        for p in &members {
            assert!(
                p.index() < self.num_processes,
                "role member {p} out of range ({} processes)",
                self.num_processes
            );
            assert!(
                self.roles.iter().all(|r| !r.contains(p)),
                "process {p} already belongs to another role"
            );
        }
        if members.len() >= 2 {
            self.roles.push(members);
        }
        self
    }

    /// Number of processes of the system.
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// The declared roles (each with at least two members).
    pub fn roles(&self) -> &[Vec<ProcessId>] {
        &self.roles
    }

    /// Order of the *candidate* group (the product of the factorials of the
    /// role sizes) — an upper bound on the validated group's order.
    pub fn candidate_order(&self) -> usize {
        self.roles
            .iter()
            .map(|r| (1..=r.len()).product::<usize>())
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_roles_are_dropped() {
        let roles = RoleMap::new(3).role([ProcessId(0)]);
        assert!(roles.roles().is_empty());
        assert_eq!(roles.candidate_order(), 1);
    }

    #[test]
    fn candidate_order_multiplies_factorials() {
        let roles = RoleMap::new(6)
            .role([ProcessId(0), ProcessId(1), ProcessId(2)])
            .role([ProcessId(3), ProcessId(4)]);
        assert_eq!(roles.candidate_order(), 6 * 2);
    }

    #[test]
    #[should_panic(expected = "already belongs")]
    fn overlapping_roles_panic() {
        let _ = RoleMap::new(3)
            .role([ProcessId(0), ProcessId(1)])
            .role([ProcessId(1), ProcessId(2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        let _ = RoleMap::new(2).role([ProcessId(1), ProcessId(2)]);
    }
}
