//! The consumption side of the trace stream: fold NDJSON into answers.
//!
//! [`analyze_stream`] reads a validated event stream (reusing the
//! [`validate`](crate::validate) parser line by line) and folds every
//! completed run into a [`RunSummary`]: final counters, per-phase
//! microseconds and shares, throughput percentiles over the progress
//! samples, the per-level time series, reconstructed histograms and peak
//! memory gauges. On top of that sit [`diff`] — the cross-run comparison
//! (phase-share deltas, counter deltas, throughput ratio) behind
//! `trace_report diff` and the bench gate's phase-drift decisions — and
//! [`RunSummary::folded_stacks`], the `engine;phase <µs>` folded-stack
//! export that speedscope and inferno-style flamegraph tools consume
//! directly.

use std::collections::HashMap;

use crate::metrics::{
    bucket_index, Gauge, Histogram, HistogramSummary, GAUGE_COUNT, HISTOGRAM_COUNT,
};
use crate::phase::{Phase, PHASE_COUNT};
use crate::tracer::LevelSummary;
use crate::validate::{validate_line, EventKind, Value};

/// Percentiles of the `states_per_sec` figures across a run's progress
/// events (nearest-rank; all zero when the run emitted no samples, which
/// cannot happen for a well-formed stream).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThroughputStats {
    /// Number of progress samples folded in.
    pub samples: usize,
    /// Median states/second.
    pub p50: u64,
    /// 90th-percentile states/second.
    pub p90: u64,
    /// Fastest observed sample.
    pub max: u64,
}

impl ThroughputStats {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let rank = |p: usize| samples[(samples.len() * p).div_ceil(100).max(1) - 1];
        ThroughputStats {
            samples: samples.len(),
            p50: rank(50),
            p90: rank(90),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Everything one completed run's events fold down to.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Protocol label from the run header.
    pub protocol: String,
    /// Strategy (engine) label from the run header.
    pub strategy: String,
    /// Property label from the run header.
    pub property: String,
    /// The final verdict string.
    pub verdict: String,
    /// `false` when the run ended in the `Drop`-flushed `"aborted"` tail.
    pub clean: bool,
    /// Final state count (from the verdict event).
    pub states: u64,
    /// Final transition count (from the verdict event).
    pub transitions: u64,
    /// Total wall-clock of the run, milliseconds.
    pub elapsed_ms: u64,
    /// Peak search depth / BFS level (from the last progress sample).
    pub peak_depth: u64,
    /// Work-stealing events of the parallel BFS pool (from the last
    /// progress sample; 0 for sequential engines and older streams).
    pub steals: u64,
    /// Accumulated microseconds per phase, indexed like [`Phase::ALL`].
    pub phases_us: [u64; PHASE_COUNT],
    /// Reconstructed histograms, indexed like [`Histogram::ALL`].
    pub histograms: [HistogramSummary; HISTOGRAM_COUNT],
    /// Peak memory gauges, indexed like [`Gauge::ALL`] (all zero for
    /// schema-1 streams, which predate the gauges).
    pub gauges: [u64; GAUGE_COUNT],
    /// The per-level time series (empty for non-BFS engines).
    pub levels: Vec<LevelSummary>,
    /// The BFS level this run resumed from when it was rebuilt from a
    /// checkpoint (`None` for uninterrupted runs and pre-schema-3 streams).
    pub resumed_from: Option<u64>,
    /// Throughput percentiles over the progress samples.
    pub throughput: ThroughputStats,
}

impl RunSummary {
    /// Microseconds accumulated in `phase`.
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phases_us[phase.index()]
    }

    /// Sum of all phase times, microseconds (0 = the run was untraced or
    /// never entered a timed section).
    pub fn phase_total_us(&self) -> u64 {
        self.phases_us.iter().sum()
    }

    /// `phase`'s share of the total traced time, in [0, 1] (0.0 when
    /// nothing was traced).
    pub fn phase_share(&self, phase: Phase) -> f64 {
        let total = self.phase_total_us();
        if total == 0 {
            0.0
        } else {
            self.phase_us(phase) as f64 / total as f64
        }
    }

    /// Peak value of `gauge`.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()]
    }

    /// Reconstructed summary of `histogram`.
    pub fn histogram(&self, histogram: Histogram) -> &HistogramSummary {
        &self.histograms[histogram.index()]
    }

    /// The run's phase breakdown as folded-stack lines — one
    /// `engine;phase <µs>` line per non-zero phase, the collapsed format
    /// speedscope and inferno's `flamegraph.pl` descendants ingest
    /// directly. Untimed wall-clock (total elapsed minus the phase sum) is
    /// exported as an `(untimed)` frame so the graph's root spans the real
    /// run length.
    pub fn folded_stacks(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for phase in Phase::ALL {
            let us = self.phase_us(phase);
            if us > 0 {
                lines.push(format!("{};{} {us}", self.strategy, phase.name()));
            }
        }
        let untimed = (self.elapsed_ms * 1_000).saturating_sub(self.phase_total_us());
        if untimed > 0 && self.phase_total_us() > 0 {
            lines.push(format!("{};(untimed) {untimed}", self.strategy));
        }
        lines
    }
}

/// The cross-run comparison `diff` produces: all deltas are `b - a`, so a
/// positive number means the second run is bigger/slower.
#[derive(Clone, Debug, PartialEq)]
pub struct RunDiff {
    /// Per-phase share-of-traced-time delta (fractional points), indexed
    /// like [`Phase::ALL`]. All zero when either run was untraced.
    pub phase_share_delta: [f64; PHASE_COUNT],
    /// State-count delta.
    pub states_delta: i64,
    /// Transition-count delta.
    pub transitions_delta: i64,
    /// Peak-depth delta.
    pub depth_delta: i64,
    /// Wall-clock delta, milliseconds.
    pub elapsed_ms_delta: i64,
    /// Peak-gauge deltas, indexed like [`Gauge::ALL`].
    pub gauge_delta: [i64; GAUGE_COUNT],
    /// Median-throughput ratio `b/a` (1.0 when both medians are zero).
    pub throughput_ratio: f64,
}

impl RunDiff {
    /// `true` when the two runs agreed on every compared figure (the
    /// self-diff contract: `diff(a, a).is_zero()`).
    pub fn is_zero(&self) -> bool {
        self.phase_share_delta.iter().all(|d| *d == 0.0)
            && self.states_delta == 0
            && self.transitions_delta == 0
            && self.depth_delta == 0
            && self.elapsed_ms_delta == 0
            && self.gauge_delta.iter().all(|d| *d == 0)
            && self.throughput_ratio == 1.0
    }
}

/// Compares two run summaries (see [`RunDiff`] for the sign conventions).
pub fn diff(a: &RunSummary, b: &RunSummary) -> RunDiff {
    let mut phase_share_delta = [0.0; PHASE_COUNT];
    if a.phase_total_us() > 0 && b.phase_total_us() > 0 {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            phase_share_delta[i] = b.phase_share(*phase) - a.phase_share(*phase);
        }
    }
    let throughput_ratio = match (a.throughput.p50, b.throughput.p50) {
        (0, 0) => 1.0,
        (0, _) => f64::INFINITY,
        (a_med, b_med) => b_med as f64 / a_med as f64,
    };
    RunDiff {
        phase_share_delta,
        states_delta: b.states as i64 - a.states as i64,
        transitions_delta: b.transitions as i64 - a.transitions as i64,
        depth_delta: b.peak_depth as i64 - a.peak_depth as i64,
        elapsed_ms_delta: b.elapsed_ms as i64 - a.elapsed_ms as i64,
        gauge_delta: std::array::from_fn(|i| b.gauges[i] as i64 - a.gauges[i] as i64),
        throughput_ratio,
    }
}

fn get_int(fields: &HashMap<String, Value>, key: &str) -> u64 {
    match fields.get(key) {
        Some(Value::Int(n)) => *n,
        _ => 0,
    }
}

fn get_str(fields: &HashMap<String, Value>, key: &str) -> String {
    match fields.get(key) {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    }
}

/// Rebuilds a [`HistogramSummary`] from its four `phase_summary` fields
/// (the compact `lower_bound:count` bucket string plus count/sum/max).
fn parse_histogram(fields: &HashMap<String, Value>, name: &str) -> HistogramSummary {
    let mut summary = HistogramSummary {
        count: get_int(fields, &format!("{name}_count")),
        sum: get_int(fields, &format!("{name}_sum")),
        max: get_int(fields, &format!("{name}_max")),
        ..Default::default()
    };
    let compact = get_str(fields, &format!("{name}_buckets"));
    for pair in compact.split(',').filter(|p| !p.is_empty()) {
        let Some((lb, n)) = pair.split_once(':') else {
            continue;
        };
        let (Ok(lb), Ok(n)) = (lb.parse::<u64>(), n.parse::<u64>()) else {
            continue;
        };
        summary.buckets[bucket_index(lb)] += n;
    }
    summary
}

/// Folds a whole NDJSON stream into one [`RunSummary`] per completed run,
/// in stream order. Validation is strict — the reader refuses what the
/// validator refuses — and a stream that ends inside an open run is an
/// error (partial runs have no verdict to summarize).
///
/// # Errors
///
/// The first schema/ordering violation, or truncation, as a message
/// prefixed with the offending line number where one exists.
pub fn analyze_stream<'a, I>(lines: I) -> Result<Vec<RunSummary>, String>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut runs = Vec::new();
    let mut current: Option<RunSummary> = None;
    let mut throughput_samples: Vec<u64> = Vec::new();
    for (idx, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let (kind, fields) = validate_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        match kind {
            EventKind::RunHeader => {
                if current.is_some() {
                    return Err(format!(
                        "line {lineno}: run_header while the previous run is still open"
                    ));
                }
                throughput_samples.clear();
                current = Some(RunSummary {
                    protocol: get_str(&fields, "protocol"),
                    strategy: get_str(&fields, "strategy"),
                    property: get_str(&fields, "property"),
                    ..Default::default()
                });
            }
            EventKind::Progress => {
                let run = current
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: progress outside a run"))?;
                throughput_samples.push(get_int(&fields, "states_per_sec"));
                run.peak_depth = run.peak_depth.max(get_int(&fields, "depth"));
                run.steals = run.steals.max(get_int(&fields, "steals"));
                for (i, gauge) in Gauge::ALL.iter().enumerate() {
                    run.gauges[i] = run.gauges[i].max(get_int(&fields, gauge.name()));
                }
            }
            EventKind::LevelSummary => {
                let run = current
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: level_summary outside a run"))?;
                run.levels.push(LevelSummary {
                    level: get_int(&fields, "level"),
                    width: get_int(&fields, "width"),
                    new_states: get_int(&fields, "new_states"),
                    store_hits: get_int(&fields, "store_hits"),
                    frontier_bytes: get_int(&fields, "frontier_bytes"),
                    duration_us: get_int(&fields, "duration_us"),
                });
            }
            EventKind::Resume => {
                let run = current
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: resume outside a run"))?;
                run.resumed_from = Some(get_int(&fields, "level"));
            }
            EventKind::PhaseSummary => {
                let run = current
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: phase_summary outside a run"))?;
                for (i, phase) in Phase::ALL.iter().enumerate() {
                    run.phases_us[i] = get_int(&fields, &format!("{}_us", phase.name()));
                }
                for (i, hist) in Histogram::ALL.iter().enumerate() {
                    run.histograms[i] = parse_histogram(&fields, hist.name());
                }
            }
            EventKind::Verdict => {
                let mut run = current
                    .take()
                    .ok_or_else(|| format!("line {lineno}: verdict outside a run"))?;
                run.verdict = get_str(&fields, "verdict");
                run.clean = matches!(fields.get("clean"), Some(Value::Bool(true)));
                run.states = get_int(&fields, "states");
                run.transitions = get_int(&fields, "transitions");
                run.elapsed_ms = get_int(&fields, "elapsed_ms");
                run.throughput =
                    ThroughputStats::from_samples(std::mem::take(&mut throughput_samples));
                runs.push(run);
            }
        }
    }
    if current.is_some() {
        return Err("stream ends inside an open run (missing verdict)".to_string());
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, SharedBuffer, Tracer};

    fn emit_run(tracer: &Tracer, states: u64, with_level: bool) {
        let run = tracer.begin_run("paxos", "stateful-bfs+spor", "agreement");
        run.add(Counter::States, states);
        run.add(Counter::Transitions, states * 2);
        run.add(Counter::Depth, 3);
        run.sample_gauge(Gauge::StoreBytes, 4096);
        run.record(Histogram::LevelWidth, states);
        {
            let _g = run.span(Phase::Expansion);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        if with_level {
            run.level_summary(&LevelSummary {
                level: 1,
                width: 1,
                new_states: states - 1,
                store_hits: 0,
                frontier_bytes: 64,
                duration_us: 50,
            });
        }
        run.finish("verified");
        drop(run);
    }

    fn traced(states: u64, with_level: bool) -> RunSummary {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        emit_run(&tracer, states, with_level);
        let text = buf.contents();
        let mut runs = analyze_stream(text.lines()).unwrap();
        assert_eq!(runs.len(), 1);
        runs.remove(0)
    }

    #[test]
    fn summaries_fold_the_emitted_events() {
        let summary = traced(10, true);
        assert_eq!(summary.protocol, "paxos");
        assert_eq!(summary.strategy, "stateful-bfs+spor");
        assert_eq!(summary.verdict, "verified");
        assert!(summary.clean);
        assert_eq!(summary.states, 10);
        assert_eq!(summary.transitions, 20);
        assert_eq!(summary.peak_depth, 3);
        assert_eq!(summary.gauge(Gauge::StoreBytes), 4096);
        assert_eq!(summary.levels.len(), 1);
        assert_eq!(summary.levels[0].new_states, 9);
        assert!(summary.phase_us(Phase::Expansion) >= 1_000);
        assert!(summary.phase_share(Phase::Expansion) > 0.99);
        assert_eq!(summary.histogram(Histogram::LevelWidth).count, 1);
        assert_eq!(summary.histogram(Histogram::LevelWidth).sum, 10);
        assert!(summary.throughput.samples >= 1);
        assert!(summary.throughput.max >= summary.throughput.p50);
    }

    #[test]
    fn self_diff_is_all_zero() {
        let summary = traced(10, true);
        let d = diff(&summary, &summary);
        assert!(d.is_zero(), "{d:?}");
    }

    #[test]
    fn diff_signs_follow_b_minus_a() {
        let a = traced(10, false);
        let b = traced(25, false);
        let d = diff(&a, &b);
        assert_eq!(d.states_delta, 15);
        assert_eq!(d.transitions_delta, 30);
        assert!(d.throughput_ratio > 0.0);
        assert!(!d.is_zero());
    }

    #[test]
    fn untraced_runs_produce_no_share_deltas() {
        let a = RunSummary {
            states: 5,
            ..Default::default()
        };
        let b = traced(10, false);
        let d = diff(&a, &b);
        assert!(d.phase_share_delta.iter().all(|x| *x == 0.0));
        assert_eq!(d.states_delta, 5);
    }

    #[test]
    fn folded_stacks_are_speedscope_shaped() {
        let summary = traced(10, false);
        let stacks = summary.folded_stacks();
        assert!(!stacks.is_empty());
        for line in &stacks {
            // "<frames> <count>": frames are `;`-separated, count numeric.
            let (frames, count) = line.rsplit_once(' ').expect("space-separated count");
            assert!(frames.starts_with("stateful-bfs+spor;"), "{line}");
            assert!(count.parse::<u64>().is_ok(), "{line}");
        }
        assert!(stacks.iter().any(|l| l.contains(";expansion ")));
    }

    #[test]
    fn histogram_buckets_round_trip_through_the_compact_string() {
        let mut fields = HashMap::new();
        fields.insert("h_count".to_string(), Value::Int(5));
        fields.insert("h_sum".to_string(), Value::Int(14));
        fields.insert("h_max".to_string(), Value::Int(8));
        fields.insert(
            "h_buckets".to_string(),
            Value::Str("0:1,1:1,2:2,8:1".into()),
        );
        let h = parse_histogram(&fields, "h");
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets_compact(), "0:1,1:1,2:2,8:1");
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        emit_run(&tracer, 3, false);
        let text = buf.contents();
        let partial: Vec<&str> = text.lines().take(2).collect();
        let err = analyze_stream(partial).unwrap_err();
        assert!(err.contains("missing verdict"), "{err}");
    }

    #[test]
    fn multiple_runs_fold_in_stream_order() {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        emit_run(&tracer, 4, false);
        emit_run(&tracer, 9, true);
        let text = buf.contents();
        let runs = analyze_stream(text.lines()).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].states, 4);
        assert_eq!(runs[1].states, 9);
        assert_eq!(runs[1].levels.len(), 1);
    }
}
