//! `trace_check` — validates NDJSON trace files against the mp-trace event
//! schema (CI's guard that `--trace` output stays machine-readable).
//!
//! ```text
//! Usage: trace_check FILE...
//! ```
//!
//! Exits non-zero and prints the first offending line when any file fails
//! validation; prints a per-file run/progress summary otherwise.

use std::process::ExitCode;

use mp_trace::validate::validate_stream;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("Usage: trace_check FILE...");
        eprintln!();
        eprintln!("Validates each NDJSON trace file against the mp-trace event");
        eprintln!("schema (run_header, progress, phase_summary, verdict) and the");
        eprintln!("per-run ordering contract.");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut failed = false;
    for path in &args {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_stream(contents.lines()) {
            Ok(summary) => {
                println!(
                    "{path}: OK — {} runs ({} clean, {} aborted), {} progress events",
                    summary.runs, summary.clean_runs, summary.aborted_runs, summary.progress_events
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
