//! `trace_check` — validates NDJSON trace files against the mp-trace event
//! schema (CI's guard that `--trace` output stays machine-readable).
//!
//! ```text
//! Usage: trace_check FILE...
//! ```
//!
//! Each failure class gets its own exit code so CI steps and scripts can
//! react without parsing messages:
//!
//! | exit | meaning |
//! |------|---------|
//! | 0    | every file is schema-valid and every run finished cleanly |
//! | 1    | schema/ordering violation (or unreadable file / bad usage) |
//! | 2    | truncated stream — ends mid-run or holds no completed run  |
//! | 3    | valid stream, but some run aborted (`clean:false` verdict) |
//!
//! When files land in different classes the most severe one wins, in the
//! order invalid > truncated > aborted (an invalid byte stream is a worse
//! sign than a run that honestly reported its own abort).

use std::process::ExitCode;

use mp_trace::validate::{classify_stream, StreamVerdict};

/// What one file's classification contributes to the process exit code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Outcome {
    /// All runs present, complete and clean.
    Clean,
    /// Complete and schema-valid, but at least one `clean:false` verdict.
    Aborted,
    /// The stream stops mid-run (killed process, filled disk).
    Truncated,
    /// Schema or ordering violation (also: unreadable file, bad usage).
    Invalid,
}

impl Outcome {
    fn exit_code(self) -> u8 {
        match self {
            Outcome::Clean => 0,
            Outcome::Invalid => 1,
            Outcome::Truncated => 2,
            Outcome::Aborted => 3,
        }
    }
}

/// Classifies one file's contents and prints its per-file report line.
fn check_contents(path: &str, contents: &str, out: &mut impl std::fmt::Write) -> Outcome {
    match classify_stream(contents.lines()) {
        StreamVerdict::Clean(summary) => {
            let _ = writeln!(
                out,
                "{path}: OK — {} runs ({} clean, {} aborted), {} progress events, {} level summaries",
                summary.runs,
                summary.clean_runs,
                summary.aborted_runs,
                summary.progress_events,
                summary.level_summaries,
            );
            Outcome::Clean
        }
        StreamVerdict::Aborted(summary) => {
            let _ = writeln!(
                out,
                "{path}: ABORTED — {} of {} runs ended with clean:false (the \
                 checker stopped early and said so); stream itself is schema-valid",
                summary.aborted_runs, summary.runs,
            );
            Outcome::Aborted
        }
        StreamVerdict::Truncated(e) => {
            let _ = writeln!(
                out,
                "{path}: TRUNCATED — {e} (stream ends mid-run: killed process, \
                 filled disk, or an incomplete copy)"
            );
            Outcome::Truncated
        }
        StreamVerdict::Invalid(e) => {
            let _ = writeln!(out, "{path}: INVALID — {e}");
            Outcome::Invalid
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("Usage: trace_check FILE...");
        eprintln!();
        eprintln!("Validates each NDJSON trace file against the mp-trace event");
        eprintln!("schema (run_header, progress, level_summary, phase_summary,");
        eprintln!("verdict) and the per-run ordering contract.");
        eprintln!();
        eprintln!("Exit codes: 0 clean, 1 invalid, 2 truncated, 3 aborted runs.");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut worst = Outcome::Clean;
    for path in &args {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                worst = worst.max(Outcome::Invalid);
                continue;
            }
        };
        let mut report = String::new();
        let outcome = check_contents(path, &contents, &mut report);
        if outcome == Outcome::Clean {
            print!("{report}");
        } else {
            eprint!("{report}");
        }
        worst = worst.max(outcome);
    }
    ExitCode::from(worst.exit_code())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_trace::{Counter, SharedBuffer, Tracer};

    fn clean_trace() -> String {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let run = tracer.begin_run("p", "s", "prop");
        run.add(Counter::States, 7);
        run.finish("verified");
        drop(run);
        buf.contents()
    }

    fn aborted_trace() -> String {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let run = tracer.begin_run("p", "s", "prop");
        run.add(Counter::States, 7);
        drop(run); // no finish(): Drop flushes the aborted tail
        buf.contents()
    }

    fn outcome_of(contents: &str) -> Outcome {
        let mut sink = String::new();
        check_contents("test.ndjson", contents, &mut sink)
    }

    #[test]
    fn clean_stream_exits_zero() {
        let outcome = outcome_of(&clean_trace());
        assert_eq!(outcome, Outcome::Clean);
        assert_eq!(outcome.exit_code(), 0);
    }

    #[test]
    fn invalid_stream_exits_one() {
        let outcome = outcome_of("{\"event\":\"mystery\"}\n");
        assert_eq!(outcome, Outcome::Invalid);
        assert_eq!(outcome.exit_code(), 1);
    }

    #[test]
    fn truncated_stream_exits_two() {
        let full = clean_trace();
        let prefix: String = full.lines().take(1).map(|l| format!("{l}\n")).collect();
        let outcome = outcome_of(&prefix);
        assert_eq!(outcome, Outcome::Truncated);
        assert_eq!(outcome.exit_code(), 2);
        // The empty stream is truncation too — no completed run to speak of.
        assert_eq!(outcome_of(""), Outcome::Truncated);
    }

    #[test]
    fn aborted_run_exits_three() {
        let outcome = outcome_of(&aborted_trace());
        assert_eq!(outcome, Outcome::Aborted);
        assert_eq!(outcome.exit_code(), 3);
    }

    #[test]
    fn messages_name_the_failure_class() {
        let mut report = String::new();
        check_contents("t", &aborted_trace(), &mut report);
        assert!(report.contains("ABORTED"), "{report}");
        report.clear();
        let full = clean_trace();
        let prefix: String = full.lines().take(1).map(|l| format!("{l}\n")).collect();
        check_contents("t", &prefix, &mut report);
        assert!(report.contains("TRUNCATED"), "{report}");
        report.clear();
        check_contents("t", "not json", &mut report);
        assert!(report.contains("INVALID"), "{report}");
    }

    #[test]
    fn severity_order_prefers_invalid() {
        assert!(Outcome::Invalid > Outcome::Truncated);
        assert!(Outcome::Truncated > Outcome::Aborted);
        assert!(Outcome::Aborted > Outcome::Clean);
    }
}
