//! # mp-trace — zero-dependency tracing, metrics and progress reporting
//!
//! The observability layer of the MP-Basset reproduction. Everything is
//! `std`-only — no external crates — because paper-scale certification runs
//! must be observable in the same hermetic environment they are verified
//! in. Three pillars:
//!
//! * **Phase timers** — RAII [`SpanGuard`]s attribute wall-clock to a fixed
//!   [`Phase`] taxonomy (expansion, store lookup, canonicalization,
//!   frontier encode/decode, spill I/O, stubborn-set computation, SCC
//!   backstop). A disabled tracer reads no clock at all.
//! * **Metrics registry** — atomic [`Counter`]s and log₂-bucket
//!   [`Histogram`]s (orbit sizes, stubborn-set sizes, BFS level widths,
//!   spill segment sizes, parallel-batch occupancy), safely shared across
//!   the parallel engine's worker threads by `&`-borrow.
//! * **Progress heartbeat** — a sampler thread snapshots the registry
//!   periodically and emits human-readable stderr lines and/or
//!   machine-readable NDJSON events (`run_header`, `progress`,
//!   `phase_summary`, `verdict`); [`validate`] checks a stream against that
//!   schema with no external JSON dependency, and the `trace_check` binary
//!   wraps it for CI.
//!
//! A run that panics or returns early still flushes its tail: dropping the
//! [`RunTrace`] guard emits the final progress, phase summary and an
//! `"aborted"` verdict.
//!
//! ```
//! use mp_trace::{Counter, Phase, SharedBuffer, Tracer};
//!
//! let buf = SharedBuffer::new();
//! let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
//! let run = tracer.begin_run("demo", "stateful-dfs", "invariant");
//! {
//!     let _span = run.span(Phase::Expansion); // timed until the guard drops
//!     run.add(Counter::States, 42);
//! }
//! run.finish("verified");
//! drop(run);
//!
//! let text = buf.contents();
//! assert!(text.starts_with("{\"event\":\"run_header\""));
//! let summary = mp_trace::validate::validate_stream(text.lines()).unwrap();
//! assert_eq!(summary.runs, 1);
//! assert_eq!(summary.clean_runs, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
mod metrics;
mod phase;
mod tracer;
pub mod validate;

pub use metrics::{
    bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, HistogramSummary, Snapshot,
    BUCKETS, COUNTER_COUNT, GAUGE_COUNT, HISTOGRAM_COUNT,
};
pub use phase::{Phase, PhaseTimes, PHASE_COUNT};
pub use tracer::{
    LevelSummary, RunTrace, SharedBuffer, SpanGuard, TraceHandle, TraceOptions, Tracer,
};
