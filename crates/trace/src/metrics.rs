//! The atomic metrics registry: counters and log₂-bucket histograms.
//!
//! One [`Registry`] lives inside every traced run. All mutation goes
//! through `&self` with relaxed atomics, so the parallel BFS engine's
//! worker threads share it through a plain borrow — per-thread
//! contributions sum exactly because every bump is a single
//! `fetch_add`/`fetch_max` on the shared cell.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::phase::{Phase, PhaseTimes, PHASE_COUNT};

/// A monotonically increasing run counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    /// Distinct states stored (stateful) or expanded (stateless).
    States,
    /// Transition executions.
    Transitions,
    /// State expansions.
    Expansions,
    /// Successors whose key was already visited.
    Revisits,
    /// Search depth / BFS level — recorded as a **high-water mark**, not a
    /// sum: `add` folds the argument in with `max`.
    Depth,
    /// Work-stealing events of the parallel BFS pool: one bump per batch a
    /// worker took from a victim's deque instead of its own.
    Steals,
}

/// Number of counters in [`Counter::ALL`].
pub const COUNTER_COUNT: usize = 6;

impl Counter {
    /// Every counter, in emission order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::States,
        Counter::Transitions,
        Counter::Expansions,
        Counter::Revisits,
        Counter::Depth,
        Counter::Steals,
    ];

    /// Stable snake_case name used in NDJSON progress events.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::States => "states",
            Counter::Transitions => "transitions",
            Counter::Expansions => "expansions",
            Counter::Revisits => "revisits",
            Counter::Depth => "depth",
            Counter::Steals => "steals",
        }
    }

    const fn index(self) -> usize {
        match self {
            Counter::States => 0,
            Counter::Transitions => 1,
            Counter::Expansions => 2,
            Counter::Revisits => 3,
            Counter::Depth => 4,
            Counter::Steals => 5,
        }
    }
}

/// A log₂-bucket histogram of the registry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Histogram {
    /// Orbit sizes observed by the symmetry reduction.
    OrbitSize,
    /// Sizes of the instance sets the partial-order reducer selected.
    StubbornSetSize,
    /// Number of states per BFS level.
    LevelWidth,
    /// Bytes per spilled frontier segment.
    SpillSegmentBytes,
    /// States per parallel-BFS batch (how full each batch ran).
    BatchOccupancy,
}

/// Number of histograms in [`Histogram::ALL`].
pub const HISTOGRAM_COUNT: usize = 5;

impl Histogram {
    /// Every histogram, in emission order.
    pub const ALL: [Histogram; HISTOGRAM_COUNT] = [
        Histogram::OrbitSize,
        Histogram::StubbornSetSize,
        Histogram::LevelWidth,
        Histogram::SpillSegmentBytes,
        Histogram::BatchOccupancy,
    ];

    /// Stable snake_case name used in NDJSON phase-summary fields
    /// (`<name>_count`, `<name>_sum`, `<name>_max`, `<name>_buckets`).
    pub const fn name(self) -> &'static str {
        match self {
            Histogram::OrbitSize => "orbit_size",
            Histogram::StubbornSetSize => "stubborn_set_size",
            Histogram::LevelWidth => "level_width",
            Histogram::SpillSegmentBytes => "spill_segment_bytes",
            Histogram::BatchOccupancy => "batch_occupancy",
        }
    }

    pub(crate) const fn index(self) -> usize {
        match self {
            Histogram::OrbitSize => 0,
            Histogram::StubbornSetSize => 1,
            Histogram::LevelWidth => 2,
            Histogram::SpillSegmentBytes => 3,
            Histogram::BatchOccupancy => 4,
        }
    }
}

/// A gauge of the registry: an instantaneous figure the engines *sample*
/// (as opposed to the monotone [`Counter`]s they bump). Each gauge is
/// folded in with `fetch_max`, so what the snapshot reports is the
/// **peak** observed so far — exactly what progress lines and the
/// heartbeat need for "how big did this run get" questions, and stable
/// under racing samplers (the max of two peaks is the peak). All gauges
/// except [`Gauge::WorkerBusyUs`] are byte figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gauge {
    /// Approximate heap bytes of the visited store's tables.
    StoreBytes,
    /// Peak bytes queued in the BFS frontier (exact encoded bytes for the
    /// disk frontier, a `size_of`-based estimate in memory).
    FrontierBytes,
    /// Resident bytes of the parent-pointer path log (offsets + unspilled
    /// buffer for the disk log, the record vector in memory).
    ParentLogBytes,
    /// Bytes of canonical orbit representatives held by the visited store
    /// on behalf of the symmetry reduction (0 on symmetry-off runs, where
    /// keys are concrete states).
    CanonicalCacheBytes,
    /// Microseconds of expansion work done by the busiest worker of the
    /// parallel BFS pool (each worker samples its own accumulated busy
    /// time, so the `fetch_max` fold keeps the straggler). **Not** a byte
    /// figure, unlike every other gauge.
    WorkerBusyUs,
}

/// Number of gauges in [`Gauge::ALL`].
pub const GAUGE_COUNT: usize = 5;

impl Gauge {
    /// Every gauge, in emission order.
    pub const ALL: [Gauge; GAUGE_COUNT] = [
        Gauge::StoreBytes,
        Gauge::FrontierBytes,
        Gauge::ParentLogBytes,
        Gauge::CanonicalCacheBytes,
        Gauge::WorkerBusyUs,
    ];

    /// Stable snake_case name used in NDJSON progress events.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::StoreBytes => "store_bytes",
            Gauge::FrontierBytes => "frontier_bytes",
            Gauge::ParentLogBytes => "parent_log_bytes",
            Gauge::CanonicalCacheBytes => "canonical_cache_bytes",
            Gauge::WorkerBusyUs => "worker_busy_us",
        }
    }

    pub(crate) const fn index(self) -> usize {
        match self {
            Gauge::StoreBytes => 0,
            Gauge::FrontierBytes => 1,
            Gauge::ParentLogBytes => 2,
            Gauge::CanonicalCacheBytes => 3,
            Gauge::WorkerBusyUs => 4,
        }
    }
}

/// Number of log₂ buckets per histogram: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything above.
pub const BUCKETS: usize = 33;

/// Maps a value to its log₂ bucket.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Smallest value that lands in bucket `index` (the label the summary
/// string uses).
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sample count per log₂ bucket.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSummary {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Compact `lower_bound:count` rendering of the non-empty buckets
    /// (e.g. `"1:3,2:5,4:1"`), used in the NDJSON `<name>_buckets` field.
    pub fn buckets_compact(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", bucket_lower_bound(i), n));
        }
        out
    }
}

/// Point-in-time snapshot of a run's whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, indexed like [`Counter::ALL`].
    pub counters: [u64; COUNTER_COUNT],
    /// Accumulated per-phase wall-clock.
    pub phases: PhaseTimes,
    /// Histogram summaries, indexed like [`Histogram::ALL`].
    pub histograms: [HistogramSummary; HISTOGRAM_COUNT],
    /// Peak gauge values, indexed like [`Gauge::ALL`].
    pub gauges: [u64; GAUGE_COUNT],
}

impl Snapshot {
    /// Value of `counter` in this snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Peak value of `gauge` in this snapshot.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()]
    }

    /// Summary of `histogram` in this snapshot.
    pub fn histogram(&self, histogram: Histogram) -> &HistogramSummary {
        &self.histograms[histogram.index()]
    }
}

/// The shared atomic registry of one traced run.
pub(crate) struct Registry {
    counters: [AtomicU64; COUNTER_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    hist_buckets: [[AtomicU64; BUCKETS]; HISTOGRAM_COUNT],
    hist_count: [AtomicU64; HISTOGRAM_COUNT],
    hist_sum: [AtomicU64; HISTOGRAM_COUNT],
    hist_max: [AtomicU64; HISTOGRAM_COUNT],
    gauges: [AtomicU64; GAUGE_COUNT],
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            hist_count: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_sum: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_max: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn add(&self, counter: Counter, n: u64) {
        let cell = &self.counters[counter.index()];
        match counter {
            Counter::Depth => {
                cell.fetch_max(n, Ordering::Relaxed);
            }
            _ => {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn record(&self, histogram: Histogram, value: u64) {
        let h = histogram.index();
        self.hist_buckets[h][bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.hist_count[h].fetch_add(1, Ordering::Relaxed);
        self.hist_sum[h].fetch_add(value, Ordering::Relaxed);
        self.hist_max[h].fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn sample_gauge(&self, gauge: Gauge, bytes: u64) {
        self.gauges[gauge.index()].fetch_max(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_phase_nanos(&self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn phase_times(&self) -> PhaseTimes {
        PhaseTimes::from_nanos(std::array::from_fn(|i| {
            self.phase_nanos[i].load(Ordering::Relaxed)
        }))
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            phases: self.phase_times(),
            histograms: std::array::from_fn(|h| HistogramSummary {
                count: self.hist_count[h].load(Ordering::Relaxed),
                sum: self.hist_sum[h].load(Ordering::Relaxed),
                max: self.hist_max[h].load(Ordering::Relaxed),
                buckets: std::array::from_fn(|b| self.hist_buckets[h][b].load(Ordering::Relaxed)),
            }),
            gauges: std::array::from_fn(|g| self.gauges[g].load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0 is the value 0; bucket i ≥ 1 spans [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lb * 2 - 1), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(lb * 2), i + 1, "first value past bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_max_and_buckets() {
        let r = Registry::new();
        for v in [0, 1, 2, 3, 8] {
            r.record(Histogram::OrbitSize, v);
        }
        let s = r.snapshot();
        let h = s.histogram(Histogram::OrbitSize);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 14);
        assert_eq!(h.max, 8);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets_compact(), "0:1,1:1,2:2,8:1");
        assert!((h.mean() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn gauges_keep_their_peak() {
        let r = Registry::new();
        r.sample_gauge(Gauge::StoreBytes, 100);
        r.sample_gauge(Gauge::StoreBytes, 4096);
        r.sample_gauge(Gauge::StoreBytes, 512);
        let s = r.snapshot();
        assert_eq!(s.gauge(Gauge::StoreBytes), 4096);
        assert_eq!(s.gauge(Gauge::FrontierBytes), 0);
        let mut names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GAUGE_COUNT);
    }

    #[test]
    fn depth_is_a_high_water_mark() {
        let r = Registry::new();
        r.add(Counter::Depth, 3);
        r.add(Counter::Depth, 7);
        r.add(Counter::Depth, 5);
        r.add(Counter::States, 2);
        r.add(Counter::States, 2);
        let s = r.snapshot();
        assert_eq!(s.counter(Counter::Depth), 7);
        assert_eq!(s.counter(Counter::States), 4);
    }

    #[test]
    fn registry_sums_exactly_across_threads() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        r.add(Counter::Transitions, 1);
                        r.record(Histogram::LevelWidth, i % 17);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter(Counter::Transitions), 4000);
        assert_eq!(s.histogram(Histogram::LevelWidth).count, 4000);
    }
}
