//! The fixed phase taxonomy of a model-checking run.
//!
//! Every span opened through [`crate::RunTrace::span`] is attributed to one
//! of the phases below; the accumulated wall-clock per phase is what the
//! `phase_summary` NDJSON event and the harness's `phase_*_ms` bench fields
//! report. The set is closed on purpose: a fixed enum keeps the accumulator
//! a plain array of atomics (no string interning, no hashing on the hot
//! path) and keeps every consumer — engines, bench gate, validator — in
//! agreement about what exists.

use std::time::Duration;

/// A phase of a model-checking run that spans are attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Computing enabled instances, executing transitions and updating
    /// observers — the raw successor-generation work.
    Expansion,
    /// Visited-store membership tests and inserts.
    StoreLookup,
    /// Canonicalizing `(state, observer)` pairs under a symmetry group.
    Canonicalize,
    /// Encoding frontier entries for the disk-backed frontier.
    FrontierEncode,
    /// Decoding frontier entries read back from spill segments.
    FrontierDecode,
    /// Spill-file reads and writes of the disk frontier and spill log.
    SpillIo,
    /// Stubborn-set computation inside the partial-order reducer.
    StubbornSet,
    /// The Tarjan SCC backstop pass of the liveness engine.
    SccBackstop,
    /// Merging sorted fingerprint runs of the external-memory visited store.
    RunMerge,
}

/// Number of phases in [`Phase::ALL`].
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// Every phase, in emission order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Expansion,
        Phase::StoreLookup,
        Phase::Canonicalize,
        Phase::FrontierEncode,
        Phase::FrontierDecode,
        Phase::SpillIo,
        Phase::StubbornSet,
        Phase::SccBackstop,
        Phase::RunMerge,
    ];

    /// Stable snake_case name used in NDJSON fields (`<name>_us`) and the
    /// harness's bench rows (`phase_<name>_ms`).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Expansion => "expansion",
            Phase::StoreLookup => "store_lookup",
            Phase::Canonicalize => "canonicalize",
            Phase::FrontierEncode => "frontier_encode",
            Phase::FrontierDecode => "frontier_decode",
            Phase::SpillIo => "spill_io",
            Phase::StubbornSet => "stubborn_set",
            Phase::SccBackstop => "scc_backstop",
            Phase::RunMerge => "run_merge",
        }
    }

    /// Index into per-phase accumulator arrays.
    pub(crate) const fn index(self) -> usize {
        match self {
            Phase::Expansion => 0,
            Phase::StoreLookup => 1,
            Phase::Canonicalize => 2,
            Phase::FrontierEncode => 3,
            Phase::FrontierDecode => 4,
            Phase::SpillIo => 5,
            Phase::StubbornSet => 6,
            Phase::SccBackstop => 7,
            Phase::RunMerge => 8,
        }
    }
}

/// Accumulated wall-clock per [`Phase`], as copied out of a run's registry.
///
/// Phases time *sections* of a run, not a partition of it: untimed work
/// (property evaluation, bookkeeping) belongs to no phase, and a run with
/// tracing disabled reports all zeros. Equality compares the recorded
/// nanosecond totals, which makes the type usable inside comparable
/// snapshots — but two repetitions of the same run will of course differ,
/// which is why the harness treats phase fields as noisy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; PHASE_COUNT],
}

impl PhaseTimes {
    /// All-zero phase times (what a disabled tracer reports).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from raw per-phase nanosecond totals (indexed like
    /// [`Phase::ALL`]). Mostly useful for constructing fixtures in tests
    /// of code that consumes phase breakdowns.
    pub fn from_nanos(nanos: [u64; PHASE_COUNT]) -> Self {
        PhaseTimes { nanos }
    }

    /// Nanoseconds accumulated in `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// The accumulated time of `phase` as a [`Duration`].
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos(phase))
    }

    /// Whole milliseconds accumulated in `phase` (the bench-row resolution).
    pub fn millis(&self, phase: Phase) -> u64 {
        self.nanos(phase) / 1_000_000
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// `true` when nothing was recorded (tracing disabled, or a run that
    /// never entered a timed section).
    pub fn is_zero(&self) -> bool {
        self.nanos.iter().all(|n| *n == 0)
    }

    /// Iterates `(phase, accumulated time)` pairs in [`Phase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, Duration)> + '_ {
        Phase::ALL.iter().map(|p| (*p, self.get(*p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
        for name in names {
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn indices_cover_the_array() {
        let mut seen = [false; PHASE_COUNT];
        for p in Phase::ALL {
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn times_accumulate_and_total() {
        let mut nanos = [0u64; PHASE_COUNT];
        nanos[Phase::Expansion.index()] = 2_000_000;
        nanos[Phase::SpillIo.index()] = 500_000;
        let t = PhaseTimes::from_nanos(nanos);
        assert_eq!(t.millis(Phase::Expansion), 2);
        assert_eq!(t.get(Phase::SpillIo), Duration::from_micros(500));
        assert_eq!(t.total(), Duration::from_nanos(2_500_000));
        assert!(!t.is_zero());
        assert!(PhaseTimes::new().is_zero());
    }
}
