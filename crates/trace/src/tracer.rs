//! The tracer: run-scoped spans, counters, heartbeat and NDJSON emission.
//!
//! A [`Tracer`] is a cheap, cloneable handle configured once per process
//! (or per sweep) and carried by value inside `CheckerConfig`. Calling
//! [`Tracer::begin_run`] opens one **run** — a single engine invocation —
//! and returns a [`RunTrace`] guard that owns the run's metrics
//! [`Registry`](crate::Snapshot) and, when enabled, a heartbeat sampler
//! thread. Dropping the guard without [`TraceHandle::finish`] still flushes
//! a final progress/phase-summary/verdict tail (verdict `"aborted"`,
//! `clean:false`), so a panicking or killed run leaves a usable trace.
//!
//! The disabled tracer ([`Tracer::disabled`], also `Default`) costs one
//! branch per call: no clock is read, no atomics touched, no thread
//! spawned.

use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use crate::phase::{Phase, PhaseTimes};

/// One BFS level's worth of time-series data, emitted as a `level_summary`
/// NDJSON event by the breadth-first engines at the end of every level.
/// Together the events form the per-run time series the `trace_report
/// timeline` subcommand renders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelSummary {
    /// The BFS level (1-based; level 1 expands the initial state).
    pub level: u64,
    /// Number of frontier entries the level started with.
    pub width: u64,
    /// States first inserted into the visited store during this level.
    pub new_states: u64,
    /// Visited-store hits (revisited successors) during this level.
    pub store_hits: u64,
    /// Peak bytes queued in the frontier so far.
    pub frontier_bytes: u64,
    /// Wall-clock the level took, in microseconds.
    pub duration_us: u64,
}

/// How a [`Tracer`] reports: stderr heartbeat lines, NDJSON events, or both.
#[derive(Debug, Default)]
pub struct TraceOptions {
    /// Emit human-readable progress lines to stderr.
    pub progress: bool,
    /// Write machine-readable NDJSON events to this file (created or
    /// truncated).
    pub ndjson: Option<PathBuf>,
    /// Heartbeat sampling interval; `None` selects the 1 s default.
    pub interval: Option<Duration>,
}

impl TraceOptions {
    /// Options with everything off (yields a disabled tracer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables stderr progress lines (builder style).
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Routes NDJSON events to `path` (builder style).
    pub fn with_ndjson(mut self, path: impl Into<PathBuf>) -> Self {
        self.ndjson = Some(path.into());
        self
    }

    /// Sets the heartbeat interval (builder style).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = Some(interval);
        self
    }
}

const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// Tracer internals shared by every run it opens (one sweep = one sink).
struct Shared {
    progress: bool,
    interval: Duration,
    /// NDJSON sink; `None` when only stderr progress was requested.
    /// One mutex serialises whole lines, so events from a heartbeat racing
    /// a finishing run never interleave mid-line.
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    /// Global event sequence number across all runs of this tracer.
    seq: AtomicU64,
}

impl Shared {
    fn write_line(&self, line: &str) {
        if let Some(sink) = &self.sink {
            let mut w = sink.lock().expect("trace sink poisoned");
            // A full disk must not take the checker down with it.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

/// The observability handle carried by `CheckerConfig`.
///
/// Cloning is cheap (an `Arc` bump); the `Default` tracer is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer: every call is a single branch.
    pub fn disabled() -> Self {
        Tracer { shared: None }
    }

    /// Builds a tracer from [`TraceOptions`]; opens (and truncates) the
    /// NDJSON file if one was requested. All-off options yield a disabled
    /// tracer.
    pub fn from_options(options: TraceOptions) -> io::Result<Self> {
        let sink: Option<Mutex<Box<dyn Write + Send>>> = match &options.ndjson {
            Some(path) => {
                let file = std::fs::File::create(path)?;
                Some(Mutex::new(Box::new(io::BufWriter::new(file))))
            }
            None => None,
        };
        if !options.progress && sink.is_none() {
            return Ok(Self::disabled());
        }
        Ok(Tracer {
            shared: Some(Arc::new(Shared {
                progress: options.progress,
                interval: options.interval.unwrap_or(DEFAULT_INTERVAL),
                sink,
                seq: AtomicU64::new(0),
            })),
        })
    }

    /// Tracer that writes NDJSON to `path` (no stderr heartbeat).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::from_options(TraceOptions::new().with_ndjson(path.as_ref()))
    }

    /// Tracer that writes NDJSON lines to an arbitrary writer — the test
    /// and doc-example entry point (see [`SharedBuffer`]).
    pub fn to_writer(progress: bool, writer: Box<dyn Write + Send>) -> Self {
        Tracer {
            shared: Some(Arc::new(Shared {
                progress,
                interval: DEFAULT_INTERVAL,
                sink: Some(Mutex::new(writer)),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// `false` for the no-op tracer.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens one traced run and emits its `run_header` event. The returned
    /// guard owns the run's registry and heartbeat; hold it for the whole
    /// engine invocation.
    pub fn begin_run(&self, protocol: &str, strategy: &str, property: &str) -> RunTrace {
        let Some(shared) = &self.shared else {
            return RunTrace {
                handle: TraceHandle { inner: None },
                heartbeat: None,
            };
        };
        let inner = Arc::new(RunInner {
            shared: shared.clone(),
            registry: Registry::new(),
            start: Instant::now(),
            protocol: protocol.to_string(),
            strategy: strategy.to_string(),
            property: property.to_string(),
            finished: Mutex::new(false),
            stop: Condvar::new(),
        });
        inner.emit_header();
        let heartbeat = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("mp-trace-heartbeat".to_string())
                .spawn(move || inner.heartbeat_loop())
                .ok()
        };
        RunTrace {
            handle: TraceHandle { inner: Some(inner) },
            heartbeat,
        }
    }
}

struct RunInner {
    shared: Arc<Shared>,
    registry: Registry,
    start: Instant,
    protocol: String,
    strategy: String,
    property: String,
    /// `true` once the final tail (progress + phase_summary + verdict) was
    /// emitted. Guarded by a mutex — not an atomic — so the heartbeat can
    /// never slip a progress event after the verdict, and so the condvar
    /// below has something to wait on.
    finished: Mutex<bool>,
    stop: Condvar,
}

impl RunInner {
    fn next_seq(&self) -> u64 {
        self.shared.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn heartbeat_loop(&self) {
        let mut finished = self.finished.lock().expect("trace run lock poisoned");
        loop {
            let (guard, _timeout) = self
                .stop
                .wait_timeout(finished, self.shared.interval)
                .expect("trace run lock poisoned");
            finished = guard;
            if *finished {
                return;
            }
            self.emit_progress(false);
            self.stderr_progress();
        }
    }

    fn header(&self, event: &str, line: &mut String) {
        line.push_str("{\"event\":\"");
        line.push_str(event);
        line.push_str("\",\"seq\":");
        line.push_str(&self.next_seq().to_string());
        push_str_field(line, "protocol", &self.protocol);
        push_str_field(line, "strategy", &self.strategy);
    }

    fn emit_header(&self) {
        let mut line = String::new();
        self.header("run_header", &mut line);
        line.push_str(",\"schema\":3");
        push_str_field(&mut line, "property", &self.property);
        line.push('}');
        self.shared.write_line(&line);
    }

    /// Emits one `progress` event. Callers hold the `finished` lock or run
    /// before any finish can happen, so ordering relative to the verdict is
    /// safe.
    fn emit_progress(&self, is_final: bool) {
        let snap = self.registry.snapshot();
        let elapsed_us = (self.start.elapsed().as_micros() as u64).max(1);
        let states = snap.counter(Counter::States);
        let mut line = String::new();
        self.header("progress", &mut line);
        push_u64_field(&mut line, "elapsed_ms", elapsed_us / 1_000);
        push_u64_field(&mut line, "elapsed_us", elapsed_us);
        push_u64_field(&mut line, "states", states);
        push_u64_field(&mut line, "transitions", snap.counter(Counter::Transitions));
        push_u64_field(&mut line, "depth", snap.counter(Counter::Depth));
        push_u64_field(&mut line, "steals", snap.counter(Counter::Steals));
        // Throughput from microseconds: the old `states*1000/elapsed_ms`
        // over-reported by up to 1000x on sub-millisecond runs.
        push_u64_field(
            &mut line,
            "states_per_sec",
            states.saturating_mul(1_000_000) / elapsed_us,
        );
        for gauge in Gauge::ALL {
            push_u64_field(&mut line, gauge.name(), snap.gauge(gauge));
        }
        line.push_str(",\"final\":");
        line.push_str(if is_final { "true" } else { "false" });
        line.push('}');
        self.shared.write_line(&line);
    }

    /// Emits one `level_summary` event, unless the run already finished
    /// (the tail's ordering contract puts every level before the
    /// phase_summary).
    fn emit_level_summary(&self, level: &LevelSummary) {
        let finished = self.finished.lock().expect("trace run lock poisoned");
        if *finished {
            return;
        }
        let mut line = String::new();
        self.header("level_summary", &mut line);
        push_u64_field(&mut line, "level", level.level);
        push_u64_field(&mut line, "width", level.width);
        push_u64_field(&mut line, "new_states", level.new_states);
        push_u64_field(&mut line, "store_hits", level.store_hits);
        push_u64_field(&mut line, "frontier_bytes", level.frontier_bytes);
        push_u64_field(&mut line, "duration_us", level.duration_us);
        line.push('}');
        self.shared.write_line(&line);
    }

    /// Emits one `resume` event, unless the run already finished. The BFS
    /// engines call this exactly once, before the first resumed level, when
    /// a checkpoint manifest rebuilt their state.
    fn emit_resume(&self, level: u64, states: u64) {
        let finished = self.finished.lock().expect("trace run lock poisoned");
        if *finished {
            return;
        }
        let mut line = String::new();
        self.header("resume", &mut line);
        push_u64_field(&mut line, "level", level);
        push_u64_field(&mut line, "states", states);
        line.push('}');
        self.shared.write_line(&line);
    }

    fn emit_phase_summary(&self, snap: &Snapshot) {
        let mut line = String::new();
        self.header("phase_summary", &mut line);
        push_u64_field(
            &mut line,
            "elapsed_ms",
            self.start.elapsed().as_millis() as u64,
        );
        for phase in Phase::ALL {
            push_u64_field(
                &mut line,
                &format!("{}_us", phase.name()),
                snap.phases.nanos(phase) / 1_000,
            );
        }
        for hist in Histogram::ALL {
            let h = snap.histogram(hist);
            push_u64_field(&mut line, &format!("{}_count", hist.name()), h.count);
            push_u64_field(&mut line, &format!("{}_sum", hist.name()), h.sum);
            push_u64_field(&mut line, &format!("{}_max", hist.name()), h.max);
            push_str_field(
                &mut line,
                &format!("{}_buckets", hist.name()),
                &h.buckets_compact(),
            );
        }
        line.push('}');
        self.shared.write_line(&line);
    }

    fn emit_verdict(&self, verdict: &str, clean: bool, snap: &Snapshot) {
        let mut line = String::new();
        self.header("verdict", &mut line);
        push_str_field(&mut line, "verdict", verdict);
        line.push_str(",\"clean\":");
        line.push_str(if clean { "true" } else { "false" });
        push_u64_field(&mut line, "states", snap.counter(Counter::States));
        push_u64_field(&mut line, "transitions", snap.counter(Counter::Transitions));
        push_u64_field(
            &mut line,
            "elapsed_ms",
            self.start.elapsed().as_millis() as u64,
        );
        line.push('}');
        self.shared.write_line(&line);
    }

    fn stderr_progress(&self) {
        if !self.shared.progress {
            return;
        }
        let snap = self.registry.snapshot();
        let elapsed = self.start.elapsed();
        let states = snap.counter(Counter::States);
        let sps = states as f64 / elapsed.as_secs_f64().max(1e-9);
        eprintln!(
            "[mp-trace] {}/{}: {} states ({:.0}/s), {} transitions, depth {}, {:.1}s",
            self.protocol,
            self.strategy,
            states,
            sps,
            snap.counter(Counter::Transitions),
            snap.counter(Counter::Depth),
            elapsed.as_secs_f64()
        );
    }

    fn stderr_verdict(&self, verdict: &str) {
        if !self.shared.progress {
            return;
        }
        let snap = self.registry.snapshot();
        eprintln!(
            "[mp-trace] {}/{}: {} — {} states in {:.1}s",
            self.protocol,
            self.strategy,
            verdict,
            snap.counter(Counter::States),
            self.start.elapsed().as_secs_f64()
        );
    }

    /// Emits the final tail exactly once; later calls are no-ops.
    fn finish_with(&self, verdict: &str, clean: bool) {
        let mut finished = self.finished.lock().expect("trace run lock poisoned");
        if *finished {
            return;
        }
        *finished = true;
        // Wake the heartbeat so it exits instead of sleeping out its
        // interval.
        self.stop.notify_all();
        // Every run gets at least one progress event, even sub-interval
        // ones — the acceptance contract of the NDJSON stream.
        self.emit_progress(true);
        let snap = self.registry.snapshot();
        self.emit_phase_summary(&snap);
        self.emit_verdict(verdict, clean, &snap);
        self.stderr_verdict(verdict);
    }
}

fn push_str_field(line: &mut String, key: &str, value: &str) {
    line.push_str(",\"");
    line.push_str(key);
    line.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                line.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => line.push(c),
        }
    }
    line.push('"');
}

fn push_u64_field(line: &mut String, key: &str, value: u64) {
    line.push_str(",\"");
    line.push_str(key);
    line.push_str("\":");
    line.push_str(&value.to_string());
}

/// A cheap, cloneable view of one traced run, shared with subsystems that
/// outlive no one — the frontier, the reducer, parallel workers. All
/// methods take `&self` and are thread-safe.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<RunInner>>,
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceHandle {
    /// A disabled handle (what `Default` yields): every call is one branch.
    pub fn disabled() -> Self {
        TraceHandle { inner: None }
    }

    /// `false` for the disabled handle.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span attributing wall-clock to `phase` until the guard
    /// drops. Disabled handles read no clock.
    #[must_use = "a span only measures while its guard is alive"]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        SpanGuard {
            active: self
                .inner
                .as_deref()
                .map(|inner| (inner, phase, Instant::now())),
        }
    }

    /// Bumps `counter` by `n` ([`Counter::Depth`] folds in with `max`).
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.add(counter, n);
        }
    }

    /// Records one `value` sample into `histogram`.
    pub fn record(&self, histogram: Histogram, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.record(histogram, value);
        }
    }

    /// Samples `bytes` into `gauge`; the registry keeps the peak, which the
    /// heartbeat and every later progress line then report.
    pub fn sample_gauge(&self, gauge: Gauge, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.sample_gauge(gauge, bytes);
        }
    }

    /// Emits one `level_summary` event (a no-op when disabled or after the
    /// run finished). The BFS engines call this at the end of every level.
    pub fn level_summary(&self, level: &LevelSummary) {
        if let Some(inner) = &self.inner {
            inner.emit_level_summary(level);
        }
    }

    /// Emits one `resume` event recording that the engine rebuilt its state
    /// from a checkpoint: `level` is the last completed BFS level in the
    /// manifest, `states` the visited-store size after the rebuild. A no-op
    /// when disabled or after the run finished.
    pub fn resume(&self, level: u64, states: u64) {
        if let Some(inner) = &self.inner {
            inner.emit_resume(level, states);
        }
    }

    /// Accumulated per-phase wall-clock so far (all zero when disabled).
    pub fn phase_times(&self) -> PhaseTimes {
        match &self.inner {
            Some(inner) => inner.registry.phase_times(),
            None => PhaseTimes::new(),
        }
    }

    /// Current registry snapshot (all zero when disabled).
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => Snapshot::default(),
        }
    }

    /// Emits the final progress, phase-summary and verdict events
    /// (`clean:true`) and stops the heartbeat. Idempotent; the engine calls
    /// this on every ordinary return path, while a panic or early drop
    /// falls back to the `Drop` tail of [`RunTrace`].
    pub fn finish(&self, verdict: &str) {
        if let Some(inner) = &self.inner {
            inner.finish_with(verdict, true);
        }
    }
}

/// Run-level guard returned by [`Tracer::begin_run`].
///
/// Dereferences to [`TraceHandle`] for all recording calls. Dropping it
/// joins the heartbeat thread and — if [`TraceHandle::finish`] was never
/// called — flushes an `"aborted"` tail (`clean:false`), which is what
/// keeps traces of panicking or limit-killed runs usable.
pub struct RunTrace {
    handle: TraceHandle,
    heartbeat: Option<JoinHandle<()>>,
}

impl fmt::Debug for RunTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunTrace")
            .field("enabled", &self.handle.is_enabled())
            .finish()
    }
}

impl std::ops::Deref for RunTrace {
    type Target = TraceHandle;

    fn deref(&self) -> &TraceHandle {
        &self.handle
    }
}

impl RunTrace {
    /// A cloneable view to hand to helpers (frontier, reducer, workers).
    pub fn handle(&self) -> TraceHandle {
        self.handle.clone()
    }
}

impl Drop for RunTrace {
    fn drop(&mut self) {
        if let Some(inner) = &self.handle.inner {
            inner.finish_with("aborted", false);
        }
        if let Some(heartbeat) = self.heartbeat.take() {
            let _ = heartbeat.join();
        }
    }
}

/// RAII span guard; its lifetime is the measured interval.
pub struct SpanGuard<'a> {
    active: Option<(&'a RunInner, Phase, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((inner, phase, started)) = self.active.take() {
            inner
                .registry
                .add_phase_nanos(phase, started.elapsed().as_nanos() as u64);
        }
    }
}

/// An in-memory `Write` whose contents can be read back through any clone —
/// the doc-example and test sink for [`Tracer::to_writer`].
#[derive(Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.bytes.lock().expect("buffer poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_buffer() -> (SharedBuffer, Tracer) {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        (buf, tracer)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let run = tracer.begin_run("p", "s", "prop");
        run.add(Counter::States, 5);
        {
            let _g = run.span(Phase::Expansion);
        }
        run.record(Histogram::LevelWidth, 3);
        assert!(run.phase_times().is_zero());
        assert_eq!(run.snapshot().counter(Counter::States), 0);
        run.finish("verified");
    }

    #[test]
    fn finish_emits_the_full_event_tail() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "stateful-dfs+spor", "agreement");
        run.add(Counter::States, 10);
        run.add(Counter::Transitions, 25);
        run.add(Counter::Depth, 4);
        run.finish("verified");
        drop(run);
        let text = buf.contents();
        let events: Vec<&str> = text.lines().collect();
        assert_eq!(events.len(), 4, "header + progress + summary + verdict");
        assert!(events[0].contains("\"event\":\"run_header\""));
        assert!(events[0].contains("\"property\":\"agreement\""));
        assert!(events[1].contains("\"event\":\"progress\""));
        assert!(events[1].contains("\"states\":10"));
        assert!(events[1].contains("\"final\":true"));
        assert!(events[2].contains("\"event\":\"phase_summary\""));
        assert!(events[3].contains("\"event\":\"verdict\""));
        assert!(events[3].contains("\"verdict\":\"verified\""));
        assert!(events[3].contains("\"clean\":true"));
    }

    #[test]
    fn dropping_without_finish_flushes_an_aborted_tail() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "bfs", "p");
        run.add(Counter::States, 3);
        drop(run);
        let text = buf.contents();
        assert!(text.contains("\"verdict\":\"aborted\""));
        assert!(text.contains("\"clean\":false"));
        assert!(text.contains("\"event\":\"phase_summary\""));
    }

    #[test]
    fn panic_unwinding_still_flushes_the_tail() {
        let (buf, tracer) = traced_buffer();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let run = tracer.begin_run("demo", "dfs", "p");
            run.add(Counter::States, 1);
            panic!("engine blew up");
        }));
        assert!(result.is_err());
        let text = buf.contents();
        assert!(text.contains("\"verdict\":\"aborted\""));
        assert!(text.contains("\"clean\":false"));
    }

    #[test]
    fn finish_is_idempotent_and_drop_adds_nothing_after() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "dfs", "p");
        run.finish("verified");
        run.finish("violated");
        drop(run);
        let text = buf.contents();
        assert_eq!(text.matches("\"event\":\"verdict\"").count(), 1);
        assert!(text.contains("\"verdict\":\"verified\""));
        assert!(!text.contains("\"verdict\":\"violated\""));
    }

    #[test]
    fn spans_accumulate_into_their_phase() {
        let (_buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "dfs", "p");
        {
            let _g = run.span(Phase::Canonicalize);
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _g = run.span(Phase::Canonicalize);
        }
        let times = run.phase_times();
        assert!(times.nanos(Phase::Canonicalize) >= 2_000_000);
        assert_eq!(times.nanos(Phase::SpillIo), 0);
        run.finish("verified");
    }

    #[test]
    fn heartbeat_emits_periodic_progress() {
        let buf = SharedBuffer::new();
        let tracer = Tracer {
            shared: Some(Arc::new(Shared {
                progress: false,
                interval: Duration::from_millis(5),
                sink: Some(Mutex::new(Box::new(buf.clone()))),
                seq: AtomicU64::new(0),
            })),
        };
        let run = tracer.begin_run("demo", "dfs", "p");
        std::thread::sleep(Duration::from_millis(40));
        run.finish("verified");
        drop(run);
        let text = buf.contents();
        let periodic = text
            .lines()
            .filter(|l| l.contains("\"event\":\"progress\"") && l.contains("\"final\":false"))
            .count();
        assert!(periodic >= 1, "expected periodic progress events:\n{text}");
        // The verdict is the last line — nothing interleaves after it.
        assert!(text.trim_end().ends_with('}'));
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"event\":\"verdict\""));
    }

    #[test]
    fn level_summaries_and_gauges_land_in_the_stream() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "stateful-bfs", "p");
        run.add(Counter::States, 3);
        run.sample_gauge(Gauge::StoreBytes, 2048);
        run.sample_gauge(Gauge::StoreBytes, 1024); // below the peak: ignored
        run.level_summary(&LevelSummary {
            level: 1,
            width: 1,
            new_states: 2,
            store_hits: 0,
            frontier_bytes: 96,
            duration_us: 41,
        });
        run.finish("verified");
        drop(run);
        let text = buf.contents();
        let level_line = text
            .lines()
            .find(|l| l.contains("\"event\":\"level_summary\""))
            .expect("level_summary emitted");
        assert!(level_line.contains("\"level\":1"));
        assert!(level_line.contains("\"new_states\":2"));
        assert!(level_line.contains("\"duration_us\":41"));
        let progress = text
            .lines()
            .find(|l| l.contains("\"event\":\"progress\""))
            .expect("progress emitted");
        assert!(progress.contains("\"store_bytes\":2048"), "{progress}");
        assert!(progress.contains("\"canonical_cache_bytes\":0"));
        assert!(progress.contains("\"elapsed_us\":"));
        // The summary precedes the phase_summary (ordering contract).
        let level_at = text.find("level_summary").unwrap();
        let summary_at = text.find("phase_summary").unwrap();
        assert!(level_at < summary_at);
    }

    #[test]
    fn resume_events_land_in_the_stream_and_respect_finish() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "stateful-bfs", "p");
        run.resume(4, 1234);
        run.finish("verified");
        run.resume(9, 9999);
        drop(run);
        let text = buf.contents();
        let resume_line = text
            .lines()
            .find(|l| l.contains("\"event\":\"resume\""))
            .expect("resume emitted");
        assert!(resume_line.contains("\"level\":4"));
        assert!(resume_line.contains("\"states\":1234"));
        assert!(!text.contains("\"level\":9"), "post-finish resume dropped");
    }

    #[test]
    fn level_summaries_after_finish_are_dropped() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "stateful-bfs", "p");
        run.finish("verified");
        run.level_summary(&LevelSummary::default());
        drop(run);
        assert!(!buf.contents().contains("level_summary"));
    }

    #[test]
    fn sub_millisecond_throughput_is_not_inflated() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("demo", "stateful-bfs", "p");
        run.add(Counter::States, 100);
        run.finish("verified");
        drop(run);
        let progress = buf
            .contents()
            .lines()
            .find(|l| l.contains("\"event\":\"progress\""))
            .unwrap()
            .to_string();
        let sps: u64 = progress
            .split("\"states_per_sec\":")
            .nth(1)
            .unwrap()
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // 100 states in a few microseconds is millions/s, far below the
        // 100 states * 1000 = 100_000/s floor the old ms-based formula
        // reported for *any* sub-millisecond run... but crucially it must
        // not exceed the physical bound of 100 states per elapsed_us
        // microseconds scaled to a second.
        let elapsed_us: u64 = progress
            .split("\"elapsed_us\":")
            .nth(1)
            .unwrap()
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(sps, 100 * 1_000_000 / elapsed_us.max(1));
    }

    #[test]
    fn strings_are_json_escaped() {
        let (buf, tracer) = traced_buffer();
        let run = tracer.begin_run("has \"quotes\"\n", "s\\tray", "p");
        run.finish("verified");
        drop(run);
        let text = buf.contents();
        assert!(text.contains("has \\\"quotes\\\"\\n"));
        assert!(text.contains("s\\\\tray"));
    }

    #[test]
    fn sequence_numbers_are_global_across_runs() {
        let (buf, tracer) = traced_buffer();
        let a = tracer.begin_run("p1", "s", "prop");
        a.finish("verified");
        drop(a);
        let b = tracer.begin_run("p2", "s", "prop");
        b.finish("verified");
        drop(b);
        let text = buf.contents();
        assert!(text.contains("\"seq\":0"));
        assert!(text.contains("\"seq\":7"), "8 events across two runs");
    }
}
