//! Schema validation for the NDJSON trace stream — no external JSON crate.
//!
//! The emitter writes *flat* objects only (string / integer / boolean
//! values, no nesting), so the parser here accepts exactly that shape and
//! rejects everything else. [`validate_line`] checks one event against the
//! schema; [`validate_stream`] additionally enforces the per-run event
//! order the acceptance contract names: a `run_header`, at least one
//! `progress` event, exactly one `phase_summary`, and a final `verdict`.

use std::collections::HashMap;

use crate::metrics::Histogram;
use crate::phase::Phase;

/// A value of a flat trace event: the only three shapes the emitter writes.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative integer (every numeric trace field is a count or a
    /// duration).
    Int(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
        }
    }
}

/// The event class of a validated line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Run start: protocol, strategy, property, schema version.
    RunHeader,
    /// Periodic or final progress sample.
    Progress,
    /// Per-BFS-level time-series sample (schema 2).
    LevelSummary,
    /// Checkpoint-resume marker: the engine rebuilt its state from a
    /// manifest (schema 3).
    Resume,
    /// Per-phase wall-clock and histogram summaries.
    PhaseSummary,
    /// Final verdict of the run.
    Verdict,
}

/// Parses one flat JSON object (the only shape trace events use). Rejects
/// nested arrays/objects, floats, null and trailing garbage.
pub fn parse_flat_object(line: &str) -> Result<HashMap<String, Value>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = HashMap::new();

    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    };

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"', found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                            code =
                                code * 16 + c.to_digit(16).ok_or(format!("bad hex digit {c:?}"))?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("line does not start with '{'".to_string()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(format!("expected ':' after key {key:?}, found {other:?}")),
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some((_, '"')) => Value::Str(parse_string(&mut chars)?),
                Some((_, 't')) => {
                    for expected in "true".chars() {
                        match chars.next() {
                            Some((_, c)) if c == expected => {}
                            other => return Err(format!("bad literal near {other:?}")),
                        }
                    }
                    Value::Bool(true)
                }
                Some((_, 'f')) => {
                    for expected in "false".chars() {
                        match chars.next() {
                            Some((_, c)) if c == expected => {}
                            other => return Err(format!("bad literal near {other:?}")),
                        }
                    }
                    Value::Bool(false)
                }
                Some((_, c)) if c.is_ascii_digit() => {
                    let mut digits = String::new();
                    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_digit()) {
                        digits.push(chars.next().unwrap().1);
                    }
                    if matches!(chars.peek(), Some((_, '.' | 'e' | 'E'))) {
                        return Err(format!("field {key:?}: floats are not part of the schema"));
                    }
                    Value::Int(
                        digits
                            .parse::<u64>()
                            .map_err(|e| format!("field {key:?}: {e}"))?,
                    )
                }
                Some((_, '{' | '[')) => {
                    return Err(format!(
                        "field {key:?}: nested values are not part of the schema"
                    ))
                }
                other => return Err(format!("field {key:?}: unexpected value start {other:?}")),
            };
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate field {key:?}"));
            }
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing data {c:?} at byte {i}"));
    }
    Ok(fields)
}

fn require<'a>(
    fields: &'a HashMap<String, Value>,
    event: &str,
    key: &str,
) -> Result<&'a Value, String> {
    fields
        .get(key)
        .ok_or_else(|| format!("{event}: missing field {key:?}"))
}

fn require_int(fields: &HashMap<String, Value>, event: &str, key: &str) -> Result<u64, String> {
    match require(fields, event, key)? {
        Value::Int(n) => Ok(*n),
        other => Err(format!(
            "{event}: field {key:?} must be an integer, found {}",
            other.kind()
        )),
    }
}

fn require_str<'a>(
    fields: &'a HashMap<String, Value>,
    event: &str,
    key: &str,
) -> Result<&'a str, String> {
    match require(fields, event, key)? {
        Value::Str(s) => Ok(s),
        other => Err(format!(
            "{event}: field {key:?} must be a string, found {}",
            other.kind()
        )),
    }
}

fn require_bool(fields: &HashMap<String, Value>, event: &str, key: &str) -> Result<bool, String> {
    match require(fields, event, key)? {
        Value::Bool(b) => Ok(*b),
        other => Err(format!(
            "{event}: field {key:?} must be a boolean, found {}",
            other.kind()
        )),
    }
}

/// Validates one NDJSON line against the event schema and returns its
/// event kind plus parsed fields.
pub fn validate_line(line: &str) -> Result<(EventKind, HashMap<String, Value>), String> {
    let fields = parse_flat_object(line)?;
    let event = require_str(&fields, "event", "event")?.to_string();
    require_int(&fields, &event, "seq")?;
    require_str(&fields, &event, "protocol")?;
    require_str(&fields, &event, "strategy")?;
    let kind = match event.as_str() {
        "run_header" => {
            let schema = require_int(&fields, &event, "schema")?;
            // Schema 2 added `elapsed_us` + memory gauges to progress
            // events and the `level_summary` event; schema 3 added the
            // `resume` event. Streams of every version validate (each
            // addition is optional fields plus a new event kind, so older
            // streams remain well-formed).
            if !(1..=3).contains(&schema) {
                return Err(format!("run_header: unsupported schema version {schema}"));
            }
            require_str(&fields, &event, "property")?;
            EventKind::RunHeader
        }
        "progress" => {
            for key in [
                "elapsed_ms",
                "states",
                "transitions",
                "depth",
                "states_per_sec",
            ] {
                require_int(&fields, &event, key)?;
            }
            // Schema-2 additions, validated for type when present.
            for key in crate::metrics::Gauge::ALL.map(|g| g.name()) {
                if fields.contains_key(key) {
                    require_int(&fields, &event, key)?;
                }
            }
            for key in ["elapsed_us", "steals"] {
                if fields.contains_key(key) {
                    require_int(&fields, &event, key)?;
                }
            }
            require_bool(&fields, &event, "final")?;
            EventKind::Progress
        }
        "level_summary" => {
            for key in [
                "level",
                "width",
                "new_states",
                "store_hits",
                "frontier_bytes",
                "duration_us",
            ] {
                require_int(&fields, &event, key)?;
            }
            EventKind::LevelSummary
        }
        "resume" => {
            for key in ["level", "states"] {
                require_int(&fields, &event, key)?;
            }
            EventKind::Resume
        }
        "phase_summary" => {
            require_int(&fields, &event, "elapsed_ms")?;
            for phase in Phase::ALL {
                require_int(&fields, &event, &format!("{}_us", phase.name()))?;
            }
            for hist in Histogram::ALL {
                require_int(&fields, &event, &format!("{}_count", hist.name()))?;
                require_int(&fields, &event, &format!("{}_sum", hist.name()))?;
                require_int(&fields, &event, &format!("{}_max", hist.name()))?;
                require_str(&fields, &event, &format!("{}_buckets", hist.name()))?;
            }
            EventKind::PhaseSummary
        }
        "verdict" => {
            require_str(&fields, &event, "verdict")?;
            require_bool(&fields, &event, "clean")?;
            for key in ["states", "transitions", "elapsed_ms"] {
                require_int(&fields, &event, key)?;
            }
            EventKind::Verdict
        }
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok((kind, fields))
}

/// What [`validate_stream`] found in a valid stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Completed runs (header through verdict).
    pub runs: usize,
    /// Total progress events.
    pub progress_events: usize,
    /// Total level_summary events.
    pub level_summaries: usize,
    /// Total resume events (checkpoint-resumed runs).
    pub resume_events: usize,
    /// Runs whose verdict carried `clean:true`.
    pub clean_runs: usize,
    /// Runs that ended in the `Drop`-flushed `"aborted"` verdict.
    pub aborted_runs: usize,
}

/// The classified outcome of checking a whole stream — what `trace_check`
/// maps to its distinct exit codes. The three failure classes mean three
/// different things operationally: `Invalid` is an emitter/validator bug,
/// `Truncated` is a killed process or a filled disk, and `Aborted` is a
/// well-formed stream whose producer panicked or was dropped mid-run
/// (the `Drop` tail flushed `clean:false`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamVerdict {
    /// Well-formed, every run completed with `clean:true`.
    Clean(StreamSummary),
    /// Well-formed, but at least one run ended `clean:false`.
    Aborted(StreamSummary),
    /// Every line validates, but the stream stops mid-run (missing
    /// verdict) or holds no completed run at all.
    Truncated(String),
    /// A line failed schema validation or the per-run ordering contract.
    Invalid(String),
}

/// Classifies a whole NDJSON stream: every line against the schema, plus
/// the per-run ordering contract (header → (progress | level_summary)⁺ →
/// phase_summary → verdict, with at least one progress event). Runs are
/// sequential — engines never interleave events of two runs in one sink.
pub fn classify_stream<'a, I>(lines: I) -> StreamVerdict
where
    I: IntoIterator<Item = &'a str>,
{
    let mut summary = StreamSummary::default();
    let mut open = false;
    let mut progress_in_run = 0usize;
    let mut summaries_in_run = 0usize;
    for (idx, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let (kind, fields) = match validate_line(line) {
            Ok(parsed) => parsed,
            Err(e) => return StreamVerdict::Invalid(format!("line {lineno}: {e}")),
        };
        let ordering_error = |msg: String| StreamVerdict::Invalid(format!("line {lineno}: {msg}"));
        match kind {
            EventKind::RunHeader => {
                if open {
                    return ordering_error(
                        "run_header while the previous run is still open".to_string(),
                    );
                }
                open = true;
                progress_in_run = 0;
                summaries_in_run = 0;
            }
            EventKind::Progress => {
                if !open {
                    return ordering_error("progress outside a run".to_string());
                }
                if summaries_in_run > 0 {
                    return ordering_error("progress after the phase_summary".to_string());
                }
                progress_in_run += 1;
                summary.progress_events += 1;
            }
            EventKind::LevelSummary => {
                if !open {
                    return ordering_error("level_summary outside a run".to_string());
                }
                if summaries_in_run > 0 {
                    return ordering_error("level_summary after the phase_summary".to_string());
                }
                summary.level_summaries += 1;
            }
            EventKind::Resume => {
                if !open {
                    return ordering_error("resume outside a run".to_string());
                }
                if summaries_in_run > 0 {
                    return ordering_error("resume after the phase_summary".to_string());
                }
                summary.resume_events += 1;
            }
            EventKind::PhaseSummary => {
                if !open {
                    return ordering_error("phase_summary outside a run".to_string());
                }
                summaries_in_run += 1;
                if summaries_in_run > 1 {
                    return ordering_error("duplicate phase_summary".to_string());
                }
            }
            EventKind::Verdict => {
                if !open {
                    return ordering_error("verdict outside a run".to_string());
                }
                if progress_in_run == 0 {
                    return ordering_error("verdict without a progress event".to_string());
                }
                if summaries_in_run != 1 {
                    return ordering_error("verdict without a phase_summary".to_string());
                }
                open = false;
                summary.runs += 1;
                match fields.get("clean") {
                    Some(Value::Bool(true)) => summary.clean_runs += 1,
                    _ => summary.aborted_runs += 1,
                }
            }
        }
    }
    if open {
        return StreamVerdict::Truncated(
            "stream ends inside an open run (missing verdict)".to_string(),
        );
    }
    if summary.runs == 0 {
        return StreamVerdict::Truncated("stream contains no completed run".to_string());
    }
    if summary.aborted_runs > 0 {
        StreamVerdict::Aborted(summary)
    } else {
        StreamVerdict::Clean(summary)
    }
}

/// Validates a whole NDJSON stream (see [`classify_stream`] for the exact
/// contract), flattening the classification: both well-formed classes pass
/// — aborted runs are a fact about the *producer*, not a stream defect —
/// while truncation and schema violations are errors.
pub fn validate_stream<'a, I>(lines: I) -> Result<StreamSummary, String>
where
    I: IntoIterator<Item = &'a str>,
{
    match classify_stream(lines) {
        StreamVerdict::Clean(summary) | StreamVerdict::Aborted(summary) => Ok(summary),
        StreamVerdict::Truncated(e) | StreamVerdict::Invalid(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, SharedBuffer, Tracer};

    #[test]
    fn parser_accepts_flat_objects_only() {
        let ok = parse_flat_object(r#"{"a":"x","b":12,"c":true,"d":false}"#).unwrap();
        assert_eq!(ok.get("a"), Some(&Value::Str("x".to_string())));
        assert_eq!(ok.get("b"), Some(&Value::Int(12)));
        assert_eq!(ok.get("c"), Some(&Value::Bool(true)));
        assert!(parse_flat_object(r#"{"a":{"nested":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":[1,2]}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1.5}"#).is_err());
        assert!(parse_flat_object(r#"{"a":null}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_flat_object(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let fields = parse_flat_object(r#"{"s":"quote \" slash \\ nl \n uni A"}"#).unwrap();
        assert_eq!(
            fields.get("s"),
            Some(&Value::Str("quote \" slash \\ nl \n uni A".to_string()))
        );
    }

    #[test]
    fn real_emitter_output_validates() {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let run = tracer.begin_run("paxos", "stateful-bfs+spor", "agreement");
        run.add(Counter::States, 12);
        run.finish("verified");
        drop(run);
        let aborted = tracer.begin_run("paxos", "stateful-dfs", "agreement");
        aborted.add(Counter::States, 2);
        drop(aborted);
        let text = buf.contents();
        let summary = validate_stream(text.lines()).unwrap();
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.clean_runs, 1);
        assert_eq!(summary.aborted_runs, 1);
        assert!(summary.progress_events >= 2);
    }

    #[test]
    fn stream_ordering_is_enforced() {
        let header = r#"{"event":"run_header","seq":0,"protocol":"p","strategy":"s","schema":1,"property":"x"}"#;
        let verdict = r#"{"event":"verdict","seq":1,"protocol":"p","strategy":"s","verdict":"verified","clean":true,"states":1,"transitions":0,"elapsed_ms":0}"#;
        // Verdict without progress/summary events.
        let err = validate_stream([header, verdict]).unwrap_err();
        assert!(err.contains("without a progress event"), "{err}");
        // Verdict before any header.
        let err = validate_stream([verdict]).unwrap_err();
        assert!(err.contains("outside a run"), "{err}");
        // Truncated stream.
        let err = validate_stream([header]).unwrap_err();
        assert!(err.contains("missing verdict"), "{err}");
        // Empty stream.
        assert!(validate_stream([]).is_err());
    }

    #[test]
    fn level_summaries_validate_and_obey_the_ordering() {
        let header = r#"{"event":"run_header","seq":0,"protocol":"p","strategy":"s","schema":2,"property":"x"}"#;
        let level = r#"{"event":"level_summary","seq":1,"protocol":"p","strategy":"s","level":1,"width":3,"new_states":2,"store_hits":1,"frontier_bytes":96,"duration_us":40}"#;
        let progress = r#"{"event":"progress","seq":2,"protocol":"p","strategy":"s","elapsed_ms":0,"elapsed_us":120,"states":3,"transitions":2,"depth":1,"states_per_sec":25000,"store_bytes":64,"frontier_bytes":96,"parent_log_bytes":24,"canonical_cache_bytes":0,"final":true}"#;
        let phase = {
            let mut line = String::from(
                r#"{"event":"phase_summary","seq":3,"protocol":"p","strategy":"s","elapsed_ms":0"#,
            );
            for p in Phase::ALL {
                line.push_str(&format!(",\"{}_us\":0", p.name()));
            }
            for h in Histogram::ALL {
                line.push_str(&format!(
                    ",\"{n}_count\":0,\"{n}_sum\":0,\"{n}_max\":0,\"{n}_buckets\":\"\"",
                    n = h.name()
                ));
            }
            line.push('}');
            line
        };
        let verdict = r#"{"event":"verdict","seq":4,"protocol":"p","strategy":"s","verdict":"verified","clean":true,"states":3,"transitions":2,"elapsed_ms":0}"#;
        let summary = validate_stream([header, level, progress, phase.as_str(), verdict]).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.level_summaries, 1);

        // A level_summary after the phase_summary violates the ordering.
        let verdict_order = classify_stream([header, progress, phase.as_str(), level, verdict]);
        assert!(
            matches!(&verdict_order, StreamVerdict::Invalid(e) if e.contains("after the phase_summary")),
            "{verdict_order:?}"
        );
        // ...and outside a run it is rejected outright.
        assert!(matches!(
            classify_stream([level]),
            StreamVerdict::Invalid(_)
        ));
        // A missing field is a schema error.
        let bad = r#"{"event":"level_summary","seq":1,"protocol":"p","strategy":"s","level":1}"#;
        assert!(validate_line(bad).unwrap_err().contains("width"));
    }

    #[test]
    fn resume_events_validate_and_obey_the_ordering() {
        let header = r#"{"event":"run_header","seq":0,"protocol":"p","strategy":"s","schema":3,"property":"x"}"#;
        let resume =
            r#"{"event":"resume","seq":1,"protocol":"p","strategy":"s","level":4,"states":1234}"#;
        let progress = r#"{"event":"progress","seq":2,"protocol":"p","strategy":"s","elapsed_ms":0,"states":3,"transitions":2,"depth":1,"states_per_sec":25000,"final":true}"#;
        let phase = {
            let mut line = String::from(
                r#"{"event":"phase_summary","seq":3,"protocol":"p","strategy":"s","elapsed_ms":0"#,
            );
            for p in Phase::ALL {
                line.push_str(&format!(",\"{}_us\":0", p.name()));
            }
            for h in Histogram::ALL {
                line.push_str(&format!(
                    ",\"{n}_count\":0,\"{n}_sum\":0,\"{n}_max\":0,\"{n}_buckets\":\"\"",
                    n = h.name()
                ));
            }
            line.push('}');
            line
        };
        let verdict = r#"{"event":"verdict","seq":4,"protocol":"p","strategy":"s","verdict":"verified","clean":true,"states":3,"transitions":2,"elapsed_ms":0}"#;
        let summary = validate_stream([header, resume, progress, phase.as_str(), verdict]).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.resume_events, 1);

        // A resume after the phase_summary violates the ordering.
        let order = classify_stream([header, progress, phase.as_str(), resume, verdict]);
        assert!(
            matches!(&order, StreamVerdict::Invalid(e) if e.contains("after the phase_summary")),
            "{order:?}"
        );
        // ...and outside a run it is rejected outright.
        assert!(matches!(
            classify_stream([resume]),
            StreamVerdict::Invalid(_)
        ));
        // A missing field is a schema error, as is an unsupported version.
        let bad = r#"{"event":"resume","seq":1,"protocol":"p","strategy":"s","level":1}"#;
        assert!(validate_line(bad).unwrap_err().contains("states"));
        let bad_schema = r#"{"event":"run_header","seq":0,"protocol":"p","strategy":"s","schema":4,"property":"x"}"#;
        assert!(validate_line(bad_schema)
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn classification_separates_truncated_aborted_and_invalid() {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let run = tracer.begin_run("p", "s", "prop");
        run.add(Counter::States, 1);
        run.finish("verified");
        drop(run);
        let clean_text = buf.contents();
        assert!(matches!(
            classify_stream(clean_text.lines()),
            StreamVerdict::Clean(_)
        ));

        // Dropping without finish -> well-formed but aborted.
        let aborted = tracer.begin_run("p", "s", "prop");
        aborted.add(Counter::States, 1);
        drop(aborted);
        let text = buf.contents();
        match classify_stream(text.lines()) {
            StreamVerdict::Aborted(summary) => {
                assert_eq!(summary.aborted_runs, 1);
                assert_eq!(summary.clean_runs, 1);
            }
            other => panic!("expected Aborted, got {other:?}"),
        }

        // Cutting the stream mid-run -> truncated, not invalid.
        let truncated: Vec<&str> = clean_text.lines().take(1).collect();
        assert!(matches!(
            classify_stream(truncated),
            StreamVerdict::Truncated(_)
        ));
        assert!(matches!(classify_stream([]), StreamVerdict::Truncated(_)));

        // Garbage -> invalid.
        assert!(matches!(
            classify_stream(["{\"event\":\"nope\"}"]),
            StreamVerdict::Invalid(_)
        ));
    }

    #[test]
    fn unknown_events_and_bad_types_are_rejected() {
        let err = validate_line(r#"{"event":"mystery","seq":0,"protocol":"p","strategy":"s"}"#)
            .unwrap_err();
        assert!(err.contains("unknown event"), "{err}");
        let err = validate_line(
            r#"{"event":"progress","seq":0,"protocol":"p","strategy":"s","elapsed_ms":"fast","states":1,"transitions":1,"depth":1,"states_per_sec":1,"final":true}"#,
        )
        .unwrap_err();
        assert!(err.contains("must be an integer"), "{err}");
    }
}
