//! Fast debugging: find the bug in "Faulty Paxos" (learners that do not
//! compare the values received from the acceptors) and print the
//! counterexample, comparing how many states each search strategy needed.
//!
//! Run with: `cargo run --release --example debugging_faulty_paxos`

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::protocols::paxos::{consensus_property, quorum_model, PaxosSetting, PaxosVariant};

fn main() {
    let setting = PaxosSetting::new(2, 3, 1);
    let spec = quorum_model(setting, PaxosVariant::FaultyLearner);
    println!(
        "Faulty Paxos {setting}: the learner accepts any majority of ACCEPT messages\n\
         without comparing ballots/values (paper, Section V-A, fault injection)\n"
    );

    let strategies: [(&str, CheckerConfig); 3] = [
        (
            "stateful BFS (shortest counterexample)",
            CheckerConfig::stateful_bfs(),
        ),
        ("stateful DFS + SPOR", CheckerConfig::stateful_dfs()),
        ("stateless DFS + DPOR", CheckerConfig::stateless(true)),
    ];

    let mut shortest: Option<usize> = None;
    for (label, config) in strategies {
        let checker = Checker::new(&spec, consensus_property(setting));
        let checker = if matches!(
            config.strategy,
            mp_basset::checker::SearchStrategy::StatefulDfs
        ) {
            checker.spor()
        } else {
            checker
        };
        let report = checker.config(config).run();
        let cx = report
            .verdict
            .counterexample()
            .expect("the faulty learner must violate consensus");
        println!(
            "{label:<40} {:>7} states, {:>8} transitions, CE of {} steps, {:.1?}",
            report.stats.states,
            report.stats.transitions_executed,
            cx.len(),
            report.stats.elapsed,
        );
        shortest = Some(shortest.map_or(cx.len(), |s: usize| s.min(cx.len())));
    }

    // Print the shortest counterexample in full (from BFS).
    let report = Checker::new(&spec, consensus_property(setting))
        .config(CheckerConfig::stateful_bfs())
        .run();
    let cx = report.verdict.counterexample().unwrap();
    println!("\nthe bug, step by step ({} steps):", cx.len());
    for (i, step) in cx.steps.iter().enumerate() {
        println!("  {:>2}. {step}", i + 1);
    }
    println!("reason: {}", cx.reason);
    if let Some(s) = shortest {
        assert!(cx.len() <= s, "BFS must report a shortest counterexample");
    }
}
