//! Byzantine equivocation against Echo Multicast: within the fault
//! threshold agreement is verified, beyond it the model checker produces the
//! attack as a counterexample.
//!
//! Run with: `cargo run --release --example echo_multicast_attack`

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::protocols::echo_multicast::{agreement_property, quorum_model, MulticastSetting};

fn check(setting: MulticastSetting) {
    println!(
        "Echo Multicast {setting}: {} receivers ({} Byzantine), tolerated f = {}, echo quorum = {}",
        setting.num_receivers(),
        setting.byzantine_receivers,
        setting.tolerated_faults(),
        setting.echo_quorum()
    );
    let spec = quorum_model(setting);
    let report = Checker::new(&spec, agreement_property(setting))
        .config(CheckerConfig::stateful_bfs())
        .run();
    println!("  {report}");
    match report.verdict.counterexample() {
        None => println!(
            "  agreement holds: the equivocating initiator cannot assemble two echo certificates\n"
        ),
        Some(cx) => {
            println!("  agreement broken — the attack, step by step:");
            for (i, step) in cx.steps.iter().enumerate() {
                println!("    {:>2}. {step}", i + 1);
            }
            println!("  reason: {}\n", cx.reason);
        }
    }
}

fn main() {
    // Within the threshold (one Byzantine receiver out of four): verified.
    check(MulticastSetting::new(3, 0, 1, 1));
    // Quorum equals all receivers: the attacker cannot even commit once.
    check(MulticastSetting::new(2, 1, 0, 1));
    // Beyond the threshold (two Byzantine receivers, f = 1): the checker
    // reconstructs the equivocation attack as a counterexample.
    check(MulticastSetting::new(2, 1, 2, 1));
}
