//! Generic fault injection: rediscover a Paxos bug without writing a
//! faulty model by hand.
//!
//! The classic debugging target of this repository is "Faulty Paxos", a
//! hand-coded variant whose learners forget to compare values (see
//! `examples/debugging_faulty_paxos.rs`). With the `mp-faults` layer the
//! same *class* of bug falls out of the correct model plus a fault budget:
//! give the environment two Byzantine message corruptions, and the checker
//! finds a run where both `ACCEPT` messages of the learner's quorum carry a
//! lied-about value — the (perfectly correct) learner then learns a value
//! nobody proposed, violating the validity half of consensus.
//!
//! Run with: `cargo run --release --example fault_injection`

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::faults::FaultBudget;
use mp_basset::protocols::paxos::{
    faulty_consensus_property, faulty_quorum_model, PaxosSetting, PaxosVariant,
};

fn check(setting: PaxosSetting, budget: FaultBudget) -> mp_basset::checker::RunReport {
    let spec = faulty_quorum_model(setting, PaxosVariant::Correct, budget);
    Checker::new(&spec, faulty_consensus_property(setting))
        .config(CheckerConfig::stateful_bfs())
        .run()
}

fn main() {
    let setting = PaxosSetting::new(1, 2, 1);
    println!(
        "Correct Paxos {setting} under generic fault budgets\n\
         (crash-stop / message loss / duplication / Byzantine corruption)\n"
    );

    // Safety is fault-tolerant by design: crashes and losses may stall the
    // protocol, but never make it learn inconsistently.
    for budget in [
        FaultBudget::none(),
        FaultBudget::none().crashes(1),
        FaultBudget::none().drops(2),
        FaultBudget::none().crashes(1).dups(1),
    ] {
        let report = check(setting, budget);
        println!(
            "budget {:<18} {:>6} states, {:>8} transitions: {}",
            budget.to_string(),
            report.stats.states,
            report.stats.transitions_executed,
            report.verdict
        );
        assert!(
            report.verdict.is_verified(),
            "consensus safety must survive benign faults"
        );
    }

    // Two corruptions are enough to forge a full learner quorum.
    let budget = FaultBudget::none().corruptions(2);
    let report = check(setting, budget);
    println!(
        "budget {:<18} {:>6} states, {:>8} transitions: {}",
        budget.to_string(),
        report.stats.states,
        report.stats.transitions_executed,
        report.verdict
    );
    let cx = report
        .verdict
        .counterexample()
        .expect("two corrupted ACCEPTs must break validity");

    println!("\nthe forged run, step by step ({} steps):", cx.len());
    for (i, step) in cx.steps.iter().enumerate() {
        println!("  {:>2}. {step}", i + 1);
    }
    println!("reason: {}", cx.reason);
    assert!(
        cx.steps
            .iter()
            .any(|s| s.to_string().contains("FAULT_CORRUPT")),
        "the counterexample must contain environment corruption steps"
    );
}
