//! Liveness checking: "does Paxos actually terminate?" — and what a
//! fairness-aware lasso counterexample looks like when it does not.
//!
//! Safety invariants can only say consensus is never *violated*; with the
//! property refactor the same checker also answers whether consensus is
//! ever *reached*. A [`Property::termination`] states that every fair
//! maximal execution reaches a goal state ("some value learned"); a
//! [`Property::leads_to`] states `p ⇝ q` ("an accepted value is eventually
//! learned"). The default fairness policy exempts environment transitions,
//! so a crash is never "unfairly required" to happen — but once the
//! environment spends its crash budget on an acceptor of the majority, the
//! fair remainder of the run can never learn, and the checker prints the
//! **lasso**: the stem including the fatal crash, and the (empty) cycle in
//! which the system stutters forever.
//!
//! Run with: `cargo run --release --example liveness`
//!
//! [`Property::termination`]: mp_basset::checker::Property::termination
//! [`Property::leads_to`]: mp_basset::checker::Property::leads_to

use mp_basset::checker::Checker;
use mp_basset::faults::FaultBudget;
use mp_basset::protocols::paxos::{
    faulty_accepted_leads_to_learned, faulty_quorum_model, faulty_termination_property,
    PaxosSetting, PaxosVariant,
};

fn main() {
    let setting = PaxosSetting::new(1, 2, 1);
    println!(
        "Liveness of Paxos {setting}: is a value eventually learned?\n\
         (termination under fault budgets; environment transitions are\n\
         fairness-exempt, so faults may — but need not — happen)\n"
    );

    for (label, budget) in [
        ("no faults", FaultBudget::none()),
        ("1 crash", FaultBudget::none().crashes(1)),
        ("1 dropped message", FaultBudget::none().drops(1)),
    ] {
        let spec = faulty_quorum_model(setting, PaxosVariant::Correct, budget);
        let termination = Checker::new(&spec, faulty_termination_property(setting))
            .spor()
            .run();
        let leads_to = Checker::new(&spec, faulty_accepted_leads_to_learned(setting))
            .spor()
            .run();
        println!(
            "  {label:<18} termination: {:<28} accepted⇝learned: {}",
            termination.verdict.to_string(),
            leads_to.verdict
        );
    }

    // Show the actual lasso for the crashed-majority case: the stem ends
    // with the crash that removes the acceptor majority, after which the
    // system quiesces without ever learning.
    let crashy = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );
    let report = Checker::new(&crashy, faulty_termination_property(setting)).run();
    let cx = report
        .verdict
        .counterexample()
        .expect("a crashed majority breaks termination");
    assert!(cx.is_lasso);
    println!("\n{cx}");
    println!("[{}] {}", report.strategy, report.stats);
}
