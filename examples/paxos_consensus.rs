//! Model check single-decree Paxos, comparing the modelling styles and the
//! refinement strategies of the paper on one instance.
//!
//! Run with: `cargo run --release --example paxos_consensus [-- --full]`
//!
//! The default uses Paxos (2,2,1) so the example finishes in seconds; pass
//! `--full` for the paper's Paxos (2,3,1), which explores a few million
//! states and takes correspondingly longer.

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::protocols::paxos::{
    consensus_property, quorum_model, single_message_model, PaxosSetting, PaxosVariant,
};
use mp_basset::refine::SplitStrategy;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let setting = if full {
        PaxosSetting::new(2, 3, 1)
    } else {
        PaxosSetting::new(2, 2, 1)
    };
    println!(
        "Paxos {setting}: {} proposers, {} acceptors, {} learner(s); majority = {}\n",
        setting.proposers,
        setting.acceptors,
        setting.learners,
        setting.majority()
    );

    // Table I, columns 2-3: single-message vs quorum model under SPOR.
    let single = single_message_model(setting, PaxosVariant::Correct);
    let report = Checker::new(&single, consensus_property(setting))
        .spor()
        .config(CheckerConfig::stateful_dfs())
        .run();
    println!("single-message model, SPOR:   {report}");

    let quorum = quorum_model(setting, PaxosVariant::Correct);
    let report = Checker::new(&quorum, consensus_property(setting))
        .spor()
        .config(CheckerConfig::stateful_dfs())
        .run();
    println!("quorum model,         SPOR:   {report}\n");

    // Table II: the refinement strategies on the quorum model.
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&quorum).expect("refinement succeeds");
        let report = Checker::new(&split, consensus_property(setting))
            .spor()
            .config(CheckerConfig::stateful_dfs())
            .run();
        println!(
            "{:<18} {:>4} transitions: {report}",
            strategy.label(),
            split.num_transitions()
        );
        assert!(report.verdict.is_verified());
    }

    println!("\nconsensus verified under every strategy");
}
