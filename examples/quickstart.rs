//! Quickstart: define a tiny message-passing protocol with a quorum
//! transition, model check it, and compare unreduced vs POR-reduced search.
//!
//! The protocol: a coordinator broadcasts a request to three workers, each
//! worker replies with an acknowledgement, and the coordinator finishes once
//! a majority (two) of acknowledgements have arrived — consumed atomically
//! by a quorum transition, exactly like the Paxos `READ_REPL` transition of
//! Figure 2 in the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use mp_basset::checker::{Checker, Invariant};
use mp_basset::model::{
    GlobalState, Message, Outcome, ProcessId, ProtocolSpec, QuorumSpec, TransitionSpec,
};

/// Messages of the quickstart protocol.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Msg {
    Request,
    Ack(u8),
}
mp_model::codec!(enum Msg { 0 = Request, 1 = Ack(n) });

impl Message for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Request => "REQUEST",
            Msg::Ack(_) => "ACK",
        }
    }
}

/// Per-process local state: a simple phase counter.
type Phase = u8;

fn coordinator_workers_protocol() -> ProtocolSpec<Phase, Msg> {
    let coordinator = ProcessId(0);
    let workers = [ProcessId(1), ProcessId(2), ProcessId(3)];

    let mut builder = ProtocolSpec::builder("quickstart")
        .process("coordinator", 0u8)
        .process("worker-1", 0u8)
        .process("worker-2", 0u8)
        .process("worker-3", 0u8);

    // The coordinator starts by broadcasting a request.
    builder = builder.transition(
        TransitionSpec::builder("BROADCAST", coordinator)
            .internal()
            .guard(|phase, _| *phase == 0)
            .sends(&["REQUEST"])
            .sends_to(workers)
            .priority(10)
            .effect(move |_, _| Outcome::new(1).broadcast(workers, Msg::Request))
            .build(),
    );

    // Each worker acknowledges the request back to the coordinator: a reply
    // transition in the sense of Definition 4.
    for (i, worker) in workers.into_iter().enumerate() {
        builder = builder.transition(
            TransitionSpec::builder(format!("ACK_{i}"), worker)
                .single_input("REQUEST")
                .reply()
                .sends(&["ACK"])
                .effect(move |_, msgs| Outcome::new(1).send(msgs[0].sender, Msg::Ack(i as u8)))
                .build(),
        );
    }

    // The coordinator finishes when a majority of workers acknowledged —
    // a quorum transition consuming two ACKs in one atomic step.
    builder = builder.transition(
        TransitionSpec::builder("COLLECT", coordinator)
            .quorum_input("ACK", QuorumSpec::Exact(2))
            .guard(|phase, _| *phase == 1)
            .sends_nothing()
            .visible()
            .priority(-10)
            .effect(|_, _| Outcome::new(2))
            .build(),
    );

    builder.build().expect("the quickstart protocol is valid")
}

fn main() {
    let spec = coordinator_workers_protocol();

    // Safety property: the coordinator only finishes after at least two
    // workers have acknowledged.
    let property = Invariant::new(
        "finish-implies-majority-acked",
        |state: &GlobalState<Phase, Msg>, _: &_| {
            let finished = state.locals[0] == 2;
            let acked = state.locals[1..].iter().filter(|p| **p == 1).count();
            if finished && acked < 2 {
                Err(format!("coordinator finished with only {acked} acks"))
            } else {
                Ok(())
            }
        },
    );

    println!(
        "protocol: {} ({} processes, {} transitions)\n",
        spec.name(),
        spec.num_processes(),
        spec.num_transitions()
    );

    let unreduced = Checker::new(&spec, property.clone()).run();
    println!("unreduced search:  {unreduced}");

    let reduced = Checker::new(&spec, property).spor().run();
    println!("SPOR search:       {reduced}");

    println!(
        "\npartial-order reduction explored {:.0}% of the unreduced state space",
        100.0 * reduced.stats.states as f64 / unreduced.stats.states as f64
    );
    assert!(unreduced.verdict.is_verified() && reduced.verdict.is_verified());
}
