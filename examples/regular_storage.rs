//! Regular storage (ABD-style single-writer register): verify regularity,
//! then check the deliberately too-strong "wrong regularity" specification
//! and inspect the counterexample.
//!
//! Run with: `cargo run --release --example regular_storage`

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::protocols::storage::{
    quorum_model, regularity_property, wrong_regularity_property, RegularityObserver,
    StorageSetting,
};

fn main() {
    let setting = StorageSetting::new(3, 1);
    println!(
        "Regular storage {setting}: {} base objects, {} reader(s), {} writes, majority = {}\n",
        setting.base_objects,
        setting.readers,
        setting.writes,
        setting.majority()
    );
    let spec = quorum_model(setting);

    // Regularity: a read returns a value at least as fresh as the latest
    // write that completed before the read started. This needs history, so
    // the checker folds the RegularityObserver into every explored state.
    let report = Checker::with_observer(
        &spec,
        regularity_property(setting),
        RegularityObserver::new(setting),
    )
    .spor()
    .run();
    println!("regularity:        {report}");
    assert!(report.verdict.is_verified());

    // Wrong regularity: additionally require reads that are concurrent with
    // a write to already return it — regular registers do not promise that,
    // and the model checker shows why.
    let report = Checker::with_observer(
        &spec,
        wrong_regularity_property(setting),
        RegularityObserver::new(setting),
    )
    .config(CheckerConfig::stateful_bfs())
    .run();
    println!("wrong regularity:  {report}");
    let cx = report
        .verdict
        .counterexample()
        .expect("the too-strong specification must fail");
    println!("\nshortest violating schedule ({} steps):", cx.len());
    for (i, step) in cx.steps.iter().enumerate() {
        println!("  {:>2}. {step}", i + 1);
    }
    println!("reason: {}", cx.reason);
}
