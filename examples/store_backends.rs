//! Compare the visited-store backends on the same verification run, under
//! both the sequential DFS engine and the parallel BFS engine.
//!
//! The fingerprint backend stores ~9 bytes per state instead of the full
//! `(state, observer)` key; its `verified` verdict is probabilistic (see
//! the `mp-store` crate docs), while counterexamples stay exact.
//!
//! Run with: `cargo run --release --example store_backends`

use mp_basset::checker::{Checker, CheckerConfig, StoreConfig};
use mp_basset::protocols::paxos::{consensus_property, quorum_model, PaxosSetting, PaxosVariant};

fn main() {
    let setting = PaxosSetting::new(1, 3, 1);
    let spec = quorum_model(setting, PaxosVariant::Correct);
    let backends = [
        StoreConfig::Exact,
        StoreConfig::sharded(),
        StoreConfig::fingerprint(48),
    ];

    for (engine_label, config) in [
        ("stateful DFS", CheckerConfig::stateful_dfs()),
        ("parallel BFS", CheckerConfig::parallel_bfs(0)),
    ] {
        println!("Paxos {setting}, consensus, {engine_label}:");
        for store in backends {
            let report = Checker::new(&spec, consensus_property(setting))
                .spor()
                .config(config.clone().with_store(store))
                .run();
            println!(
                "  requested {:<20} used {:<12} {:>6} states, ~{:>5} KiB store, {}",
                store.to_string(),
                report.stats.store_backend,
                report.stats.states,
                report.stats.store_bytes / 1024,
                report.verdict
            );
        }
        println!();
    }
}
