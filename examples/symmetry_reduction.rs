//! Process-symmetry (orbit) reduction on the fault-augmented evaluation
//! protocols: declare the interchangeable roles, let `mp-symmetry` validate
//! them against the concrete model, and explore one representative per
//! orbit — crashing acceptor 0 and crashing acceptor 1 collapse into a
//! single subtree.
//!
//! Run with `cargo run --release --example symmetry_reduction`.

use mp_basset::checker::Checker;
use mp_basset::faults::FaultBudget;
use mp_basset::protocols::paxos::{
    faulty_consensus_property, faulty_quorum_model, faulty_termination_property,
    quorum_model_with_acceptor_values, symmetry_roles, PaxosSetting, PaxosVariant,
};
use mp_basset::symmetry::SymmetryGroup;

fn main() {
    let setting = PaxosSetting::new(1, 2, 1);
    let roles = symmetry_roles(setting); // acceptors + learners interchangeable

    println!("Paxos {setting} under a crash budget of 1, with and without");
    println!("orbit reduction over the acceptor/learner roles:\n");
    let spec = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );
    let group = SymmetryGroup::build(&spec, &roles);
    println!("validated group order: {}", group.order());

    let plain = Checker::new(&spec, faulty_consensus_property(setting))
        .spor()
        .run();
    let reduced = Checker::new(&spec, faulty_consensus_property(setting))
        .spor()
        .with_role_symmetry(&roles)
        .run();
    println!("  plain:    {plain}");
    println!("  symmetry: {reduced}");
    assert!(plain.verdict.is_verified() && reduced.verdict.is_verified());
    assert!(
        reduced.stats.states < plain.stats.states,
        "the crash orbits must collapse"
    );
    println!(
        "  orbit collapse: {:.2}x fewer states\n",
        plain.stats.states as f64 / reduced.stats.states as f64
    );

    // Liveness modulo symmetry: the crashed-majority lasso is found on the
    // quotient and reported as a concrete, replayable counterexample.
    let report = Checker::new(&spec, faulty_termination_property(setting))
        .with_role_symmetry(&roles)
        .run();
    let cx = report
        .verdict
        .counterexample()
        .expect("one crash breaks the acceptor majority");
    println!("termination under symmetry: {}", report.verdict);
    println!(
        "  the lasso names a concrete crash victim: {}\n",
        cx.steps
            .iter()
            .find(|s| s.transition.starts_with("FAULT_CRASH"))
            .expect("crash in the stem")
    );

    // Validation protects asymmetric models: seed the acceptors with
    // *distinct* previously-accepted values and the swap is rejected — the
    // group degenerates to identity and the reduction is a no-op.
    let asymmetric =
        quorum_model_with_acceptor_values(setting, PaxosVariant::Correct, &[Some((1, 1)), None]);
    let degenerate = SymmetryGroup::build(&asymmetric, &roles);
    println!(
        "asymmetric variant (distinct accepted values): group order {} (identity)",
        degenerate.order()
    );
    assert!(degenerate.is_trivial());
}
