//! # mp-basset — efficient model checking of fault-tolerant distributed protocols
//!
//! Umbrella crate of the Rust reproduction of *"Efficient Model Checking of
//! Fault-Tolerant Distributed Protocols"* (Bokor, Kinder, Serafini, Suri —
//! DSN 2011). It re-exports the individual layers so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`model`] (`mp-model`) — the message-passing computation model with
//!   quorum transitions (the paper's MP language analogue);
//! * [`trace`] (`mp-trace`) — zero-dependency observability: phase timers,
//!   an atomic metrics registry, progress heartbeats and NDJSON run traces
//!   shared by every engine and harness binary;
//! * [`por`] (`mp-por`) — static (stubborn-set / MP-LPOR style) and dynamic
//!   partial-order reduction;
//! * [`store`] (`mp-store`) — pluggable visited-state backends (exact,
//!   sharded lock-striped concurrent, hash-compaction fingerprints, each
//!   optionally behind canonical-key insertion) and spillable BFS
//!   frontiers (in-memory or disk-backed segmented);
//! * [`symmetry`] (`mp-symmetry`) — process-symmetry (orbit) reduction:
//!   validated role permutation groups and the canonicalization every
//!   engine applies at store-insertion time;
//! * [`checker`] (`mp-checker`) — stateful/stateless/parallel explicit-state
//!   search engines, safety + liveness (termination / leads-to) properties
//!   with fairness policies, observers, and path/lasso counterexamples;
//! * [`refine`] (`mp-refine`) — quorum-split, reply-split and combined-split
//!   transition refinement (Theorems 1–2);
//! * [`faults`] (`mp-faults`) — generic, budgeted fault injection (crash /
//!   loss / duplication / Byzantine corruption) wrapping any protocol;
//! * [`protocols`] (`mp-protocols`) — Paxos, Echo Multicast and regular
//!   storage models, with quorum/single-message variants and injected bugs;
//! * [`harness`] (`mp-harness`) — the Table I / Table II / Section II-C
//!   experiment reproduction.
//!
//! See `README.md` for a quickstart and feature tour, and
//! `docs/ARCHITECTURE.md` for the crate map, the data flow of a check and
//! the engine comparison.

#![forbid(unsafe_code)]

pub use mp_checker as checker;
pub use mp_faults as faults;
pub use mp_harness as harness;
pub use mp_model as model;
pub use mp_por as por;
pub use mp_protocols as protocols;
pub use mp_refine as refine;
pub use mp_store as store;
pub use mp_symmetry as symmetry;
pub use mp_trace as trace;

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        // A trivial end-to-end use of every re-exported layer.
        let setting = crate::protocols::paxos::PaxosSetting::new(1, 1, 1);
        let spec = crate::protocols::paxos::quorum_model(
            setting,
            crate::protocols::paxos::PaxosVariant::Correct,
        );
        let report = crate::checker::Checker::new(
            &spec,
            crate::protocols::paxos::consensus_property(setting),
        )
        .spor()
        .run();
        assert!(report.verdict.is_verified());
    }
}
