//! Integration tests for checkpoint/resume on the breadth-first engines
//! (`mp-store`'s `CheckpointConfig` driven through `CheckerConfig`):
//!
//! * a run killed mid-search (simulated by a tight state limit, which
//!   leaves the checkpoint directory exactly as a SIGKILL at that point
//!   would) and then re-run on the same directory produces the **same
//!   verdict and deterministic counters** as an uninterrupted run — across
//!   the in-memory and disk frontiers and symmetry on/off,
//! * a resumed violating run reports the byte-identical counterexample
//!   path,
//! * the external-memory `runs` visited store checkpoints and resumes like
//!   the in-memory backends while spilling sorted runs to disk,
//! * resuming a *completed* run is a no-op that reproduces the final
//!   verdict and counters, and
//! * resume **refuses** manifests from a different configuration, a
//!   corrupted manifest, a tampered level file, and a future format
//!   version (the versioning policy of `docs/ON_DISK_FORMATS.md`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use mp_basset::checker::{Checker, CheckerConfig, CheckpointConfig, RunReport, Verdict};
use mp_basset::faults::FaultBudget;
use mp_basset::protocols::paxos::{
    self, consensus_property, faulty_consensus_property, faulty_quorum_model as faulty_paxos,
    quorum_model as paxos_quorum, PaxosSetting, PaxosVariant,
};
use mp_basset::store::{FrontierConfig, StoreConfig};

/// A fresh scratch directory per call; the checkpoint writer creates it.
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "mp-basset-ckpt-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Runs the Paxos crash-cell safety check under SPOR with an optional
/// checkpoint directory, state limit, store and symmetry setting.
fn run_crash_cell(
    symmetry: bool,
    frontier: FrontierConfig,
    store: Option<StoreConfig>,
    checkpoint: Option<CheckpointConfig>,
    max_states: Option<usize>,
) -> RunReport {
    let setting = PaxosSetting::new(1, 2, 1);
    let roles = paxos::symmetry_roles(setting);
    let spec = faulty_paxos(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).drops(1),
    );
    let mut config = CheckerConfig::stateful_bfs().with_frontier(frontier);
    if let Some(store) = store {
        config = config.with_store(store);
    }
    if let Some(checkpoint) = checkpoint {
        config = config.with_checkpoint(checkpoint);
    }
    if let Some(max_states) = max_states {
        config.max_states = max_states;
    }
    let checker = Checker::new(&spec, faulty_consensus_property(setting))
        .spor()
        .config(config);
    let checker = if symmetry {
        checker.with_role_symmetry(&roles)
    } else {
        checker
    };
    checker.run()
}

// ---------------------------------------------------------------------------
// (a) Kill/resume equivalence across frontiers × symmetry.
// ---------------------------------------------------------------------------

#[test]
fn killed_and_resumed_run_matches_uninterrupted() {
    for symmetry in [false, true] {
        for (fname, frontier) in [
            ("mem", FrontierConfig::Mem),
            ("disk", FrontierConfig::disk_with_watermark(512)),
        ] {
            let label = format!("sym={symmetry} frontier={fname}");
            let uninterrupted = run_crash_cell(symmetry, frontier, None, None, None);
            assert!(uninterrupted.verdict.is_verified(), "{label}");

            let dir = temp_dir("equiv");
            // A tight state limit stops the search mid-level, leaving the
            // directory exactly as a kill at that point would: the
            // manifest still names the last *committed* level.
            let interrupted = run_crash_cell(
                symmetry,
                frontier,
                None,
                Some(CheckpointConfig::new(&dir)),
                Some(30),
            );
            assert!(
                matches!(interrupted.verdict, Verdict::LimitReached { .. }),
                "{label}: the tight limit must interrupt the run"
            );

            let resumed = run_crash_cell(
                symmetry,
                frontier,
                None,
                Some(CheckpointConfig::new(&dir)),
                None,
            );
            assert_eq!(
                uninterrupted.verdict.to_string(),
                resumed.verdict.to_string(),
                "{label}: verdicts"
            );
            assert_eq!(
                uninterrupted.stats.counters(),
                resumed.stats.counters(),
                "{label}: deterministic counters"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------------
// (b) A resumed violating run finds the identical counterexample.
// ---------------------------------------------------------------------------

#[test]
fn resumed_run_reproduces_the_identical_counterexample() {
    // The paper's injected learner bug: the BFS finds the shortest
    // violating path, and the resumed run must reconstruct the exact same
    // one from the replayed parent log.
    let setting = PaxosSetting::new(2, 3, 1);
    let spec = paxos_quorum(setting, PaxosVariant::FaultyLearner);
    let run = |checkpoint: Option<CheckpointConfig>, max_states: Option<usize>| {
        let mut config = CheckerConfig::stateful_bfs()
            .with_frontier(FrontierConfig::disk_delta_with_watermark(512));
        if let Some(checkpoint) = checkpoint {
            config = config.with_checkpoint(checkpoint);
        }
        if let Some(max_states) = max_states {
            config.max_states = max_states;
        }
        Checker::new(&spec, consensus_property(setting))
            .spor()
            .config(config)
            .run()
    };
    let uninterrupted = run(None, None);
    let full_cx = uninterrupted
        .verdict
        .counterexample()
        .expect("the injected bug must be found");

    let dir = temp_dir("cx");
    let interrupted = run(Some(CheckpointConfig::new(&dir)), Some(100));
    assert!(
        matches!(interrupted.verdict, Verdict::LimitReached { .. }),
        "the limit must fire before the violating depth"
    );
    let resumed = run(Some(CheckpointConfig::new(&dir)), None);
    let resumed_cx = resumed
        .verdict
        .counterexample()
        .expect("the resumed run must find the bug");
    assert_eq!(full_cx.steps, resumed_cx.steps, "counterexample paths");
    assert_eq!(
        uninterrupted.stats.counters(),
        resumed.stats.counters(),
        "deterministic counters"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// (c) The external-memory visited store rides the same contract.
// ---------------------------------------------------------------------------

#[test]
fn runs_store_checkpoints_and_resumes_with_spilled_runs() {
    let store = StoreConfig::runs_with_watermark(64);
    let frontier = FrontierConfig::disk_with_watermark(512);
    let uninterrupted = run_crash_cell(false, frontier, Some(store), None, None);
    assert!(uninterrupted.verdict.is_verified());
    assert!(
        uninterrupted.stats.store_spilled_bytes > 0,
        "the tiny watermark must spill sorted runs"
    );

    let dir = temp_dir("runs");
    let interrupted = run_crash_cell(
        false,
        frontier,
        Some(store),
        Some(CheckpointConfig::new(&dir)),
        Some(30),
    );
    assert!(matches!(interrupted.verdict, Verdict::LimitReached { .. }));
    let resumed = run_crash_cell(
        false,
        frontier,
        Some(store),
        Some(CheckpointConfig::new(&dir)),
        None,
    );
    assert_eq!(
        uninterrupted.verdict.to_string(),
        resumed.verdict.to_string()
    );
    assert_eq!(uninterrupted.stats.counters(), resumed.stats.counters());
    assert!(resumed.stats.store_spilled_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// (d) Resuming a completed run is a no-op with identical results.
// ---------------------------------------------------------------------------

#[test]
fn resuming_a_completed_run_reproduces_its_result() {
    let dir = temp_dir("done");
    let frontier = FrontierConfig::Mem;
    let first = run_crash_cell(
        false,
        frontier,
        None,
        Some(CheckpointConfig::new(&dir)),
        None,
    );
    assert!(first.verdict.is_verified());
    let again = run_crash_cell(
        false,
        frontier,
        None,
        Some(CheckpointConfig::new(&dir)),
        None,
    );
    assert_eq!(first.verdict.to_string(), again.verdict.to_string());
    assert_eq!(first.stats.counters(), again.stats.counters());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// (e) Resume rejects anything it cannot prove equivalent.
// ---------------------------------------------------------------------------

/// Interrupts a plain (sym-off, mem-frontier) crash-cell run into `dir`.
fn seed_checkpoint(dir: &PathBuf) {
    let interrupted = run_crash_cell(
        false,
        FrontierConfig::Mem,
        None,
        Some(CheckpointConfig::new(dir)),
        Some(30),
    );
    assert!(matches!(interrupted.verdict, Verdict::LimitReached { .. }));
}

#[test]
#[should_panic(expected = "refusing to resume")]
fn resume_under_a_different_configuration_is_refused() {
    let dir = temp_dir("mismatch");
    seed_checkpoint(&dir);
    // Same protocol, but symmetry on: a different search identity.
    run_crash_cell(
        true,
        FrontierConfig::Mem,
        None,
        Some(CheckpointConfig::new(&dir)),
        None,
    );
}

#[test]
#[should_panic(expected = "corrupt checkpoint")]
fn a_corrupted_manifest_is_refused() {
    let dir = temp_dir("corrupt-manifest");
    seed_checkpoint(&dir);
    let manifest = dir.join("MANIFEST");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(
        &manifest,
        text.replace("spec_fingerprint", "spec_fingerprnt"),
    )
    .unwrap();
    run_crash_cell(
        false,
        FrontierConfig::Mem,
        None,
        Some(CheckpointConfig::new(&dir)),
        None,
    );
}

#[test]
#[should_panic(expected = "checkpoint")]
fn a_tampered_level_file_is_refused() {
    let dir = temp_dir("corrupt-level");
    seed_checkpoint(&dir);
    // Flip one byte of the root level; the per-file FNV in the manifest no
    // longer matches and the resume must refuse to rebuild from it.
    let level0 = dir.join("level_0.front");
    let mut bytes = std::fs::read(&level0).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&level0, bytes).unwrap();
    run_crash_cell(
        false,
        FrontierConfig::Mem,
        None,
        Some(CheckpointConfig::new(&dir)),
        None,
    );
}

#[test]
#[should_panic(expected = "checkpoint mismatch")]
fn a_future_manifest_version_is_refused() {
    let dir = temp_dir("version");
    seed_checkpoint(&dir);
    let manifest = dir.join("MANIFEST");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(
        &manifest,
        text.replace("mp-basset-checkpoint v1", "mp-basset-checkpoint v2"),
    )
    .unwrap();
    run_crash_cell(
        false,
        FrontierConfig::Mem,
        None,
        Some(CheckpointConfig::new(&dir)),
        None,
    );
}
