//! Smoke test of the experiment harness: the bounded versions of every
//! table/figure experiment run end to end and reproduce the qualitative
//! shape of the paper's results.

use mp_basset::harness::scaling::collect_sweep;
use mp_basset::harness::{
    debugging::debugging_experiments, heuristics::heuristic_comparison, render_csv, render_table,
    table1::table_i, table2::table_ii, Budget,
};
use mp_basset::protocols::paxos::PaxosSetting;

#[test]
fn table_i_quorum_models_beat_single_message_models() {
    let rows = table_i(&Budget::small(), false);
    let table = render_table("Table I", &rows);
    assert!(table.contains("Paxos"));
    assert!(table.contains("Echo Multicast"));
    assert!(table.contains("Regular storage"));

    // Shape check on the rows that completed both SPOR cells: the quorum
    // model (third cell of each protocol row) must not be larger than the
    // single-message model under the same SPOR search (second cell).
    for chunk in rows.chunks(3) {
        let [_, single_spor, quorum_spor] = chunk else {
            panic!("each protocol row has exactly three cells");
        };
        if single_spor.completed && quorum_spor.completed {
            assert!(
                quorum_spor.states <= single_spor.states,
                "{}: quorum SPOR explored {} states but single-message SPOR {}",
                quorum_spor.protocol,
                quorum_spor.states,
                single_spor.states
            );
        }
    }

    let csv = render_csv(&rows);
    assert_eq!(csv.lines().count(), rows.len() + 1);
}

#[test]
fn table_ii_combined_split_is_never_worse_than_unsplit() {
    let rows = table_ii(&Budget::small(), false);
    for chunk in rows.chunks(4) {
        let unsplit = &chunk[0];
        let combined = &chunk[3];
        assert_eq!(unsplit.strategy, "quorum (unsplit)");
        assert_eq!(combined.strategy, "combined-split");
        if unsplit.completed && combined.completed {
            assert!(
                combined.states <= unsplit.states,
                "{}: combined-split explored {} states, unsplit {}",
                combined.protocol,
                combined.states,
                unsplit.states
            );
        }
    }
}

#[test]
fn section_ii_c_inflation_grows_with_quorum_size() {
    let points = collect_sweep(4, 1, 2_000_000);
    assert_eq!(points.len(), 4);
    for p in &points {
        assert!(p.single_states >= p.quorum_states, "{p:?}");
    }
    assert!(
        points.last().unwrap().inflation() > points.first().unwrap().inflation(),
        "inflation must grow with the quorum size: {points:?}"
    );
}

#[test]
fn debugging_experiments_find_all_bugs() {
    let rows = debugging_experiments(&Budget::default());
    assert!(
        rows.iter().all(|r| r.verdict.starts_with("CE")),
        "{rows:#?}"
    );
}

#[test]
fn seed_heuristics_all_verify() {
    let rows = heuristic_comparison(PaxosSetting::new(1, 3, 1), &Budget::default());
    assert!(rows.iter().all(|r| r.verdict == "verified"));
}
