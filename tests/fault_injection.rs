//! Integration tests for the `mp-faults` subsystem: store-backend
//! agreement on fault-augmented models, exact zero-budget equivalence with
//! the seed models, and deterministic-PRNG property tests showing the
//! fault wrapper never *removes* behaviours — every unfaulted trace is
//! still executable under an all-zero budget (and under any budget, since
//! budgets only gate the environment's extra transitions).
//!
//! The random traces are drawn by a small deterministic PRNG instead of
//! `proptest` (this build environment is offline), so every run checks the
//! same fixed set of cases and failures reproduce exactly.

use mp_basset::checker::{Checker, CheckerConfig, StoreConfig};
use mp_basset::faults::{inject, project_state, FaultBudget};
use mp_basset::harness::fault_sweep::zero_budget_seed_checks;
use mp_basset::harness::Budget;
use mp_basset::model::{enabled_instances, execute_enabled};
use mp_basset::protocols::echo_multicast::{
    faulty_agreement_property, faulty_quorum_model as faulty_multicast, MulticastSetting,
};
use mp_basset::protocols::paxos::{
    faulty_consensus_property, faulty_quorum_model as faulty_paxos, quorum_model as paxos,
    PaxosSetting, PaxosVariant,
};

const BACKENDS: [StoreConfig; 3] = [
    StoreConfig::Exact,
    StoreConfig::Sharded { shards: 64 },
    StoreConfig::Fingerprint {
        bits: 48,
        shards: 1,
    },
];

/// SplitMix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

#[test]
fn all_backends_agree_on_fault_augmented_paxos() {
    // A verifying budget (benign faults) and a violating one (corruption):
    // every stateful engine × backend combination must agree.
    let setting = PaxosSetting::new(1, 2, 1);
    for (budget, expect_violation) in [
        (FaultBudget::none().crashes(1).drops(1), false),
        (FaultBudget::none().corruptions(2), true),
    ] {
        let spec = faulty_paxos(setting, PaxosVariant::Correct, budget);
        for engine in [
            CheckerConfig::stateful_dfs(),
            CheckerConfig::stateful_bfs(),
            CheckerConfig::parallel_bfs(2),
        ] {
            let mut states = None;
            for store in BACKENDS {
                let report = Checker::new(&spec, faulty_consensus_property(setting))
                    .spor()
                    .config(engine.clone().with_store(store))
                    .run();
                assert_eq!(
                    report.verdict.is_violated(),
                    expect_violation,
                    "budget {budget} under {} with {store}: {report}",
                    report.strategy
                );
                if expect_violation {
                    continue; // early-stop state counts may differ per order
                }
                let expected = *states.get_or_insert(report.stats.states);
                assert_eq!(
                    report.stats.states, expected,
                    "state count differs under {} with {store}",
                    report.strategy
                );
            }
        }
    }
}

#[test]
fn zero_budget_reproduces_every_seed_model_exactly() {
    for check in zero_budget_seed_checks(&Budget::small()) {
        assert!(
            check.matches(),
            "{} [{}]: base explored {} states, zero-budget injection {}",
            check.protocol,
            check.strategy,
            check.base_states,
            check.faulted_states
        );
    }
}

/// Every trace of the base model must be executable step-by-step on the
/// fault-augmented model, for the all-zero budget *and* for a generous
/// budget (faults only add behaviours, they never remove protocol steps),
/// with projected states equal along the whole trace.
#[test]
fn random_base_traces_replay_under_injection() {
    let setting = PaxosSetting::new(1, 2, 1);
    let base = paxos(setting, PaxosVariant::Correct);
    let budgets = [
        FaultBudget::none(),
        FaultBudget::none().crashes(2).drops(2).dups(1),
    ];
    let faulted: Vec<_> = budgets.iter().map(|b| inject(&base, *b).unwrap()).collect();

    let mut rng = Rng(7);
    for _case in 0..24 {
        let mut base_state = base.initial_state();
        let mut fault_states: Vec<_> = faulted.iter().map(|f| f.initial_state()).collect();
        for _step in 0..40 {
            let options = enabled_instances(&base, &base_state);
            if options.is_empty() {
                break;
            }
            let instance = &options[rng.below(options.len())];
            base_state = execute_enabled(&base, &base_state, instance);
            for (f, fs) in faulted.iter().zip(fault_states.iter_mut()) {
                // Wrapped protocol transitions keep ids and inputs, so the
                // *same* instance must be enabled on the faulted model.
                let mirrored = enabled_instances(f, fs)
                    .into_iter()
                    .find(|i| {
                        i.transition == instance.transition && i.envelopes == instance.envelopes
                    })
                    .unwrap_or_else(|| {
                        panic!("base instance {instance:?} not executable on {}", f.name())
                    });
                *fs = execute_enabled(f, fs, &mirrored);
                assert_eq!(
                    project_state(fs),
                    base_state,
                    "projection diverged on {}",
                    f.name()
                );
            }
        }
    }
}

/// The converse direction for protocol steps: a fault-free path through the
/// fault-augmented model (never choosing environment transitions) visits
/// exactly the base model's behaviours.
#[test]
fn random_faultfree_faulted_traces_project_onto_base() {
    let setting = MulticastSetting::new(2, 1, 0, 1);
    let base = mp_basset::protocols::echo_multicast::quorum_model(setting);
    let faulted = inject(&base, FaultBudget::none().crashes(1).drops(1)).unwrap();
    let mut rng = Rng(23);
    for _case in 0..16 {
        let mut state = faulted.initial_state();
        let mut base_state = base.initial_state();
        for _step in 0..40 {
            let protocol_options: Vec<_> = enabled_instances(&faulted, &state)
                .into_iter()
                .filter(|i| {
                    !faulted
                        .transition(i.transition)
                        .annotations()
                        .is_environment
                })
                .collect();
            if protocol_options.is_empty() {
                break;
            }
            let instance = &protocol_options[rng.below(protocol_options.len())];
            state = execute_enabled(&faulted, &state, instance);
            base_state = execute_enabled(&base, &base_state, instance);
            assert_eq!(project_state(&state), base_state);
        }
    }
}

#[test]
fn faulted_multicast_attack_survives_all_backends() {
    // The over-threshold Byzantine configuration keeps its counterexample
    // when the environment may also duplicate one message.
    let setting = MulticastSetting::new(2, 1, 2, 1);
    let spec = faulty_multicast(setting, FaultBudget::none().dups(1));
    for store in BACKENDS {
        let report = Checker::new(&spec, faulty_agreement_property(setting))
            .spor()
            .config(CheckerConfig::stateful_dfs().with_store(store))
            .run();
        assert!(
            report.verdict.is_violated(),
            "the attack must survive under {store}: {report}"
        );
    }
}
