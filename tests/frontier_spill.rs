//! Integration tests for the disk-backed (spillable) BFS frontier
//! (`mp-store`'s `FrontierConfig::Disk` driven by the breadth-first
//! engines):
//!
//! * spill-on and spill-off runs agree **exactly** — verdict, state count,
//!   transition count and search depth — across the evaluation protocols,
//!   the fault-budget grid and symmetry on/off (the frontiers are strictly
//!   FIFO, so the exploration order is identical),
//! * a tiny watermark forces multi-segment spilling and the run still
//!   reproduces the in-memory result bit for bit,
//! * counterexamples found by a spilled run carry the same concrete path
//!   as the in-memory run and replay step by step from the initial state,
//!   and
//! * with symmetry on, the spilled frontier holds canonical orbit
//!   representatives, so its peak bytes shrink with the orbit collapse
//!   (≥ 1.4x on the Paxos crash cells).

use mp_basset::checker::{Checker, CheckerConfig, Counterexample, PropertyStatus, RunReport};
use mp_basset::faults::FaultBudget;
use mp_basset::model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
};
use mp_basset::protocols::echo_multicast::{
    self, faulty_agreement_property, faulty_quorum_model as faulty_multicast, MulticastSetting,
};
use mp_basset::protocols::paxos::{
    self, consensus_property, faulty_consensus_property, faulty_quorum_model as faulty_paxos,
    quorum_model as paxos_quorum, PaxosSetting, PaxosVariant,
};
use mp_basset::protocols::storage::{
    self, faulty_quorum_model as faulty_storage, faulty_regularity_observer,
    faulty_regularity_property, StorageSetting,
};
use mp_basset::store::FrontierConfig;

/// Small enough that every grid cell writes several spill segments.
const TINY_WATERMARK: usize = 512;

fn budgets() -> [(&'static str, FaultBudget); 3] {
    [
        ("none", FaultBudget::none()),
        ("crash1", FaultBudget::none().crashes(1)),
        ("drop1", FaultBudget::none().drops(1)),
    ]
}

/// Asserts that two runs of the same check explored identically.
fn assert_identical(label: &str, mem: &RunReport, disk: &RunReport) {
    assert_eq!(
        mem.verdict.to_string(),
        disk.verdict.to_string(),
        "{label}: verdicts differ"
    );
    assert_eq!(mem.stats.states, disk.stats.states, "{label}: state counts");
    assert_eq!(
        mem.stats.transitions_executed, disk.stats.transitions_executed,
        "{label}: transition counts"
    );
    assert_eq!(mem.stats.max_depth, disk.stats.max_depth, "{label}: depth");
    assert_eq!(disk.stats.frontier_backend, "disk", "{label}");
    assert!(
        disk.strategy.ends_with("+spill"),
        "{label}: {}",
        disk.strategy
    );
}

// ---------------------------------------------------------------------------
// (a) Spill on/off agreement across protocols × budgets × symmetry.
// ---------------------------------------------------------------------------

#[test]
fn spill_matches_mem_across_protocols_budgets_and_symmetry() {
    fn grid_cell<S, M, O>(
        label: &str,
        spec: &ProtocolSpec<S, M>,
        roles: &mp_basset::symmetry::RoleMap,
        property: mp_basset::checker::Invariant<S, M, O>,
        observer: O,
        collapse: &mut Vec<(String, usize, usize)>,
    ) where
        S: LocalState + mp_basset::model::Permutable,
        M: Message + mp_basset::model::Permutable,
        O: mp_basset::checker::Observer<S, M> + mp_basset::model::Permutable + Ord,
    {
        for symmetry in [false, true] {
            let run = |frontier: FrontierConfig| {
                let checker = Checker::with_observer(spec, property.clone(), observer.clone())
                    .spor()
                    .config(CheckerConfig::stateful_bfs().with_frontier(frontier));
                let checker = if symmetry {
                    checker.with_role_symmetry(roles)
                } else {
                    checker
                };
                checker.run()
            };
            let mem = run(FrontierConfig::Mem);
            // A one-byte watermark flushes a segment per enqueued state, so
            // even the small zero-budget cells round-trip through disk.
            let disk = run(FrontierConfig::disk_with_watermark(1));
            let label = format!("{label} sym={symmetry}");
            assert_identical(&label, &mem, &disk);
            assert!(
                disk.stats.frontier_spilled_bytes > 0,
                "{label}: the one-byte watermark must force spilling"
            );
            collapse.push((label, usize::from(symmetry), disk.stats.frontier_peak_bytes));
        }
    }

    let mut collapse = Vec::new();

    let setting = PaxosSetting::new(1, 2, 1);
    let roles = paxos::symmetry_roles(setting);
    for (name, budget) in budgets() {
        let spec = faulty_paxos(setting, PaxosVariant::Correct, budget);
        grid_cell(
            &format!("paxos/{name}"),
            &spec,
            &roles,
            faulty_consensus_property(setting),
            mp_basset::checker::NullObserver,
            &mut collapse,
        );
    }

    let setting = MulticastSetting::new(2, 1, 0, 1);
    let roles = echo_multicast::symmetry_roles(setting);
    for (name, budget) in budgets() {
        let spec = faulty_multicast(setting, budget);
        grid_cell(
            &format!("multicast/{name}"),
            &spec,
            &roles,
            faulty_agreement_property(setting),
            mp_basset::checker::NullObserver,
            &mut collapse,
        );
    }

    let setting = StorageSetting::new(2, 1);
    let roles = storage::symmetry_roles(setting);
    for (name, budget) in budgets() {
        let spec = faulty_storage(setting, budget);
        grid_cell(
            &format!("storage/{name}"),
            &spec,
            &roles,
            faulty_regularity_property(setting),
            faulty_regularity_observer(setting),
            &mut collapse,
        );
    }

    // Symmetry never grows the spilled frontier: compare each sym=true
    // entry with its sym=false sibling.
    for pair in collapse.chunks(2) {
        let [(label, _, plain), (_, _, sym)] = pair else {
            panic!("grid cells come in sym off/on pairs");
        };
        assert!(
            sym <= plain,
            "{label}: symmetric frontier ({sym}B) exceeds plain ({plain}B)"
        );
    }
}

// ---------------------------------------------------------------------------
// (b) Orbit collapse is visible in the spilled frontier bytes.
// ---------------------------------------------------------------------------

#[test]
fn symmetry_shrinks_spilled_frontier_bytes_on_paxos_crash_cells() {
    let setting = PaxosSetting::new(1, 2, 1);
    let roles = paxos::symmetry_roles(setting);
    let spec = faulty_paxos(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );
    let run = |symmetry: bool| {
        let checker = Checker::new(&spec, faulty_consensus_property(setting))
            .spor()
            .config(
                CheckerConfig::stateful_bfs()
                    .with_frontier(FrontierConfig::disk_with_watermark(TINY_WATERMARK)),
            );
        let checker = if symmetry {
            checker.with_role_symmetry(&roles)
        } else {
            checker
        };
        checker.run()
    };
    let plain = run(false);
    let sym = run(true);
    assert!(plain.verdict.is_verified() && sym.verdict.is_verified());
    let ratio =
        plain.stats.frontier_peak_bytes as f64 / sym.stats.frontier_peak_bytes.max(1) as f64;
    assert!(
        ratio >= 1.4,
        "spilling canonical representatives must shrink the crash-cell \
         frontier by the orbit collapse: {}B plain vs {}B symmetric ({ratio:.2}x)",
        plain.stats.frontier_peak_bytes,
        sym.stats.frontier_peak_bytes
    );
}

// ---------------------------------------------------------------------------
// (c) Counterexamples from spilled runs: identical and concretely replayable.
// ---------------------------------------------------------------------------

/// Replays a safety counterexample from the initial state by matching each
/// recorded step against the enabled instances (same helper shape as the
/// symmetry/liveness integration tests).
fn replay<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    cx: &Counterexample,
) -> GlobalState<S, M> {
    let mut state = spec.initial_state();
    for step in &cx.steps {
        let matching: Vec<_> = enabled_instances(spec, &state)
            .into_iter()
            .filter(|i| {
                spec.transition(i.transition).name() == step.transition
                    && i.process == step.process
                    && i.senders() == step.consumed_from
            })
            .collect();
        assert!(
            !matching.is_empty(),
            "step `{step}` has no matching enabled instance during replay"
        );
        state = execute_enabled(spec, &state, &matching[0]);
    }
    state
}

#[test]
fn spilled_counterexample_replays_concretely() {
    // The paper's injected learner bug on Paxos (2,3,1): two proposers can
    // drive a faulty learner into learning two different values.
    let setting = PaxosSetting::new(2, 3, 1);
    let spec = paxos_quorum(setting, PaxosVariant::FaultyLearner);
    let property = consensus_property(setting);
    let run = |frontier: FrontierConfig| {
        Checker::new(&spec, consensus_property(setting))
            .spor()
            .config(CheckerConfig::stateful_bfs().with_frontier(frontier))
            .run()
    };
    let mem = run(FrontierConfig::Mem);
    let disk = run(FrontierConfig::disk_with_watermark(TINY_WATERMARK));
    assert!(disk.stats.frontier_spilled_bytes > 0);

    let mem_cx = mem.verdict.counterexample().expect("bug must be found");
    let disk_cx = disk.verdict.counterexample().expect("bug must be found");
    // FIFO frontiers: the spilled run finds the *same* shortest path, even
    // though its parent table lived in spill segments.
    assert_eq!(mem_cx.steps, disk_cx.steps);
    assert_eq!(mem_cx.len(), disk_cx.len());

    // And the recorded path is a real execution ending in a violation.
    let violating = replay(&spec, disk_cx);
    assert!(matches!(
        property.evaluate(&violating, &mp_basset::checker::NullObserver),
        PropertyStatus::Violated(_)
    ));
}

// ---------------------------------------------------------------------------
// (d) The tiny watermark genuinely multi-segments.
// ---------------------------------------------------------------------------

#[test]
fn tiny_watermark_forces_multi_segment_spilling() {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = faulty_paxos(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).drops(1),
    );
    let report = Checker::new(&spec, faulty_consensus_property(setting))
        .config(
            CheckerConfig::stateful_bfs()
                .with_frontier(FrontierConfig::disk_with_watermark(TINY_WATERMARK)),
        )
        .run();
    assert!(report.verdict.is_verified());
    // Multiple segments: total spilled bytes are several watermarks' worth.
    assert!(
        report.stats.frontier_spilled_bytes >= 4 * TINY_WATERMARK,
        "expected at least 4 segments, spilled only {} bytes",
        report.stats.frontier_spilled_bytes
    );
    // The mem run agrees (the unreduced crash1+drop1 cell is the largest
    // in the sweep — exactly the shape the spill exists for).
    let mem = Checker::new(&spec, faulty_consensus_property(setting))
        .config(CheckerConfig::stateful_bfs())
        .run();
    assert_eq!(mem.stats.states, report.stats.states);
    assert_eq!(mem.verdict.to_string(), report.verdict.to_string());
}
