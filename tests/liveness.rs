//! Integration tests for the liveness property classes (termination,
//! leads-to) across the evaluation protocols, the fault layer and the
//! reduction strategies:
//!
//! * termination is verified on the seed protocols,
//! * a crashed majority yields a **fair non-terminating lasso** for Paxos,
//! * SPOR on and off agree on every liveness verdict (cycle proviso), and
//! * lasso counterexamples replay deterministically step by step.

use mp_basset::checker::{Checker, CheckerConfig, Counterexample, Property, Verdict};
use mp_basset::faults::FaultBudget;
use mp_basset::model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
};
use mp_basset::protocols::echo_multicast::{
    delivery_termination_property, faulty_committed_leads_to_delivered,
    faulty_delivery_termination_property, faulty_quorum_model as faulty_multicast,
    quorum_model as multicast, MulticastSetting,
};
use mp_basset::protocols::paxos::{
    accepted_leads_to_learned, faulty_accepted_leads_to_learned,
    faulty_quorum_model as faulty_paxos, faulty_termination_property, quorum_model as paxos,
    termination_property, PaxosSetting, PaxosVariant,
};
use mp_basset::protocols::storage::{
    faulty_quorum_model as faulty_storage, faulty_read_completion_property,
    faulty_reading_leads_to_done, quorum_model as storage, read_completion_property,
    reading_leads_to_done, StorageSetting,
};

// ---------------------------------------------------------------------------
// (a) Termination verified on the seed protocols.
// ---------------------------------------------------------------------------

#[test]
fn seed_protocols_satisfy_their_liveness_properties() {
    let paxos_setting = PaxosSetting::new(1, 2, 1);
    let spec = paxos(paxos_setting, PaxosVariant::Correct);
    assert!(
        Checker::new(&spec, termination_property(paxos_setting))
            .run()
            .verdict
            .is_verified(),
        "seed Paxos must always learn a value"
    );
    assert!(
        Checker::new(&spec, accepted_leads_to_learned(paxos_setting))
            .run()
            .verdict
            .is_verified()
    );

    let multicast_setting = MulticastSetting::new(2, 1, 0, 1);
    assert!(
        Checker::new(
            &multicast(multicast_setting),
            delivery_termination_property(multicast_setting)
        )
        .run()
        .verdict
        .is_verified(),
        "seed multicast must always deliver the honest initiator's value"
    );

    let storage_setting = StorageSetting::new(2, 1);
    assert!(
        Checker::new(
            &storage(storage_setting),
            read_completion_property(storage_setting)
        )
        .run()
        .verdict
        .is_verified(),
        "seed storage reads must always complete"
    );
    assert!(Checker::new(
        &storage(storage_setting),
        reading_leads_to_done(storage_setting)
    )
    .run()
    .verdict
    .is_verified());
}

// ---------------------------------------------------------------------------
// (b) A crashed majority yields a fair non-terminating lasso for Paxos.
// ---------------------------------------------------------------------------

#[test]
fn paxos_crashed_majority_yields_fair_lasso() {
    // (1,2,1): the acceptor quorum is 2, so crashing one acceptor removes
    // the majority. Termination holds with crash budget 0 and fails with
    // crash budget 1 — the ROADMAP's "does Paxos still terminate with one
    // crash?" now has a real answer instead of a technical deadlock.
    let setting = PaxosSetting::new(1, 2, 1);

    let zero = faulty_paxos(setting, PaxosVariant::Correct, FaultBudget::none());
    assert!(
        Checker::new(&zero, faulty_termination_property(setting))
            .run()
            .verdict
            .is_verified(),
        "Paxos terminates with crash budget 0"
    );

    let crashy = faulty_paxos(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );
    let report = Checker::new(&crashy, faulty_termination_property(setting)).run();
    let cx = report
        .verdict
        .counterexample()
        .expect("crash budget 1 must break termination");
    assert!(cx.is_lasso, "liveness counterexamples are lassos: {cx}");
    assert!(
        cx.steps
            .iter()
            .any(|s| s.transition.starts_with("FAULT_CRASH")),
        "the stem must contain the crash that kills the majority: {cx}"
    );
    // The crash is fairness-exempt: the violation is not "the environment
    // was forced to act" but "after it acted, the fair remainder of the run
    // cannot learn".
    assert!(report.strategy.contains("liveness-dfs"));
}

// ---------------------------------------------------------------------------
// (c) SPOR on and off agree on every liveness verdict.
// ---------------------------------------------------------------------------

fn spor_agrees<S, M>(label: &str, spec: &ProtocolSpec<S, M>, property: &Property<S, M>) -> bool
where
    S: LocalState,
    M: Message,
{
    let unreduced = Checker::new(spec, property.clone()).run();
    let reduced = Checker::new(spec, property.clone()).spor().run();
    assert!(
        !matches!(unreduced.verdict, Verdict::LimitReached { .. }),
        "{label}: unreduced run must complete"
    );
    assert_eq!(
        unreduced.verdict.is_violated(),
        reduced.verdict.is_violated(),
        "{label}: SPOR and unreduced disagree ({} vs {})",
        unreduced.verdict,
        reduced.verdict
    );
    unreduced.verdict.is_violated()
}

#[test]
fn spor_and_unreduced_agree_on_every_liveness_verdict() {
    let budgets = [
        ("none", FaultBudget::none()),
        ("crash1", FaultBudget::none().crashes(1)),
        ("drop1", FaultBudget::none().drops(1)),
    ];

    let paxos_setting = PaxosSetting::new(1, 2, 1);
    let multicast_setting = MulticastSetting::new(2, 1, 0, 1);
    let storage_setting = StorageSetting::new(2, 1);

    let mut violations = 0usize;
    for (name, budget) in budgets {
        let spec = faulty_paxos(paxos_setting, PaxosVariant::Correct, budget);
        violations += usize::from(spor_agrees(
            &format!("paxos/termination/{name}"),
            &spec,
            &faulty_termination_property(paxos_setting),
        ));
        violations += usize::from(spor_agrees(
            &format!("paxos/leads-to/{name}"),
            &spec,
            &faulty_accepted_leads_to_learned(paxos_setting),
        ));

        let spec = faulty_multicast(multicast_setting, budget);
        violations += usize::from(spor_agrees(
            &format!("multicast/termination/{name}"),
            &spec,
            &faulty_delivery_termination_property(multicast_setting),
        ));
        violations += usize::from(spor_agrees(
            &format!("multicast/leads-to/{name}"),
            &spec,
            &faulty_committed_leads_to_delivered(multicast_setting),
        ));

        let spec = faulty_storage(storage_setting, budget);
        violations += usize::from(spor_agrees(
            &format!("storage/termination/{name}"),
            &spec,
            &faulty_read_completion_property(storage_setting),
        ));
        violations += usize::from(spor_agrees(
            &format!("storage/leads-to/{name}"),
            &spec,
            &faulty_reading_leads_to_done(storage_setting),
        ));
    }
    assert!(
        violations > 0,
        "the grid must contain both verified and violated cells"
    );
}

#[test]
fn every_engine_produces_the_same_liveness_verdict() {
    // The four engines dispatch on the property class; the BFS engines
    // route liveness to the lasso DFS, the stateless engine runs its
    // on-path detector. All must agree.
    let setting = PaxosSetting::new(1, 2, 1);
    for (budget, expect_violation) in [
        (FaultBudget::none(), false),
        (FaultBudget::none().crashes(1), true),
    ] {
        let spec = faulty_paxos(setting, PaxosVariant::Correct, budget);
        for config in [
            CheckerConfig::stateful_dfs(),
            CheckerConfig::stateful_bfs(),
            CheckerConfig::parallel_bfs(2),
            CheckerConfig::stateless(false),
            CheckerConfig::stateless(true),
        ] {
            let report = Checker::new(&spec, faulty_termination_property(setting))
                .config(config.clone())
                .run();
            assert_eq!(
                report.verdict.is_violated(),
                expect_violation,
                "strategy {:?} disagrees on budget {budget}: {report}",
                config.strategy
            );
        }
    }
}

// ---------------------------------------------------------------------------
// (d) Lasso counterexamples replay deterministically.
// ---------------------------------------------------------------------------

/// Replays a counterexample on `spec` by matching each step's transition
/// name, executing process and consumed senders against the enabled
/// instances, returning the state after the stem and after the cycle.
fn replay<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    cx: &Counterexample,
) -> (GlobalState<S, M>, GlobalState<S, M>) {
    let step = |state: &GlobalState<S, M>,
                step: &mp_basset::checker::CounterexampleStep|
     -> GlobalState<S, M> {
        let matching: Vec<_> = enabled_instances(spec, state)
            .into_iter()
            .filter(|i| {
                spec.transition(i.transition).name() == step.transition
                    && i.process == step.process
                    && i.senders() == step.consumed_from
            })
            .collect();
        assert!(
            !matching.is_empty(),
            "step `{step}` has no matching enabled instance during replay"
        );
        execute_enabled(spec, state, &matching[0])
    };
    let mut state = spec.initial_state();
    for s in &cx.steps {
        state = step(&state, s);
    }
    let entry = state.clone();
    for s in &cx.cycle {
        state = step(&state, s);
    }
    (entry, state)
}

#[test]
fn lasso_counterexamples_replay_deterministically() {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = faulty_paxos(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );

    // Two runs of the same configuration produce the identical lasso.
    let first = Checker::new(&spec, faulty_termination_property(setting)).run();
    let second = Checker::new(&spec, faulty_termination_property(setting)).run();
    let cx1 = first.verdict.counterexample().expect("violation expected");
    let cx2 = second.verdict.counterexample().expect("violation expected");
    assert_eq!(cx1, cx2, "the lasso search is deterministic");

    // The stem replays from the initial state; a quiescent lasso ends in a
    // state with no enabled transition, a cyclic lasso returns to its entry
    // state after one unrolling.
    let (entry, after_cycle) = replay(&spec, cx1);
    if cx1.cycle.is_empty() {
        assert!(
            enabled_instances(&spec, &entry).is_empty(),
            "a quiescent lasso must end in a state with nothing enabled"
        );
    } else {
        assert_eq!(entry, after_cycle, "one cycle unrolling returns to entry");
    }

    // Same for a cyclic (non-quiescent) lasso from a toy protocol: the
    // storage model under loss produces a quiescent one, the pure toggler
    // in mp-checker's unit tests covers the cyclic shape; here we replay
    // the storage lasso too.
    let storage_setting = StorageSetting::new(2, 1);
    let lossy = faulty_storage(storage_setting, FaultBudget::none().drops(1));
    let report = Checker::new(&lossy, faulty_read_completion_property(storage_setting)).run();
    let cx = report
        .verdict
        .counterexample()
        .expect("loss blocks the read");
    let (entry, after_cycle) = replay(&lossy, cx);
    if cx.cycle.is_empty() {
        assert!(enabled_instances(&lossy, &entry).is_empty());
    } else {
        assert_eq!(entry, after_cycle);
    }
}
