//! Integration test for the soundness of the reduction strategies on the
//! evaluation protocols: every engine/reduction combination must produce the
//! same verdict as the unreduced stateful search, for both correct and
//! faulty variants.

use mp_basset::checker::{Checker, CheckerConfig, Invariant, NullObserver, Observer};
use mp_basset::faults::FaultBudget;
use mp_basset::model::{LocalState, Message, ProtocolSpec};
use mp_basset::por::{IndependenceRelation, StubbornSets};
use mp_basset::protocols::echo_multicast::{
    agreement_property, quorum_model as multicast, MulticastSetting,
};
use mp_basset::protocols::paxos::{
    consensus_property, quorum_model as paxos, PaxosSetting, PaxosVariant,
};
use mp_basset::protocols::paxos::{faulty_consensus_property, faulty_quorum_model};
use mp_basset::protocols::storage::{
    quorum_model as storage, regularity_property, wrong_regularity_property, RegularityObserver,
    StorageSetting,
};
use mp_basset::refine::SplitStrategy;

/// Runs every engine × reduction combination and checks that the verdicts
/// agree with the unreduced stateful ground truth.
fn verdicts_agree<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: impl Fn() -> Invariant<S, M, O>,
    observer: O,
    expect_violation: bool,
) where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let configs = [
        ("dfs-unreduced", CheckerConfig::stateful_dfs(), false),
        ("dfs-spor", CheckerConfig::stateful_dfs(), true),
        ("bfs-unreduced", CheckerConfig::stateful_bfs(), false),
        ("bfs-spor", CheckerConfig::stateful_bfs(), true),
        ("parallel-spor", CheckerConfig::parallel_bfs(2), true),
    ];
    for (label, config, spor) in configs {
        let checker = Checker::with_observer(spec, property(), observer.clone()).config(config);
        let checker = if spor { checker.spor() } else { checker };
        let report = checker.run();
        assert_eq!(
            report.verdict.is_violated(),
            expect_violation,
            "{label} disagrees on {}: {report}",
            spec.name()
        );
    }
}

#[test]
fn paxos_verdicts_agree_across_engines() {
    let setting = PaxosSetting::new(2, 2, 1);
    verdicts_agree(
        &paxos(setting, PaxosVariant::Correct),
        || consensus_property(setting),
        NullObserver,
        false,
    );
    let faulty_setting = PaxosSetting::new(2, 3, 1);
    verdicts_agree(
        &paxos(faulty_setting, PaxosVariant::FaultyLearner),
        || consensus_property(faulty_setting),
        NullObserver,
        true,
    );
}

#[test]
fn multicast_verdicts_agree_across_engines() {
    let safe = MulticastSetting::new(2, 1, 0, 1);
    verdicts_agree(
        &multicast(safe),
        || agreement_property(safe),
        NullObserver,
        false,
    );
    let broken = MulticastSetting::new(2, 1, 2, 1);
    verdicts_agree(
        &multicast(broken),
        || agreement_property(broken),
        NullObserver,
        true,
    );
}

#[test]
fn storage_verdicts_agree_across_engines() {
    let setting = StorageSetting::new(2, 1);
    verdicts_agree(
        &storage(setting),
        || regularity_property(setting),
        RegularityObserver::new(setting),
        false,
    );
    verdicts_agree(
        &storage(setting),
        || wrong_regularity_property(setting),
        RegularityObserver::new(setting),
        true,
    );
}

#[test]
fn refined_models_keep_the_same_verdicts_under_spor() {
    let setting = MulticastSetting::new(2, 1, 2, 1);
    let base = multicast(setting);
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        let report = Checker::new(&split, agreement_property(setting))
            .spor()
            .run();
        assert!(
            report.verdict.is_violated(),
            "{} must still expose the attack: {report}",
            strategy.label()
        );
    }
}

#[test]
fn spor_never_explores_more_states_than_unreduced_dfs() {
    let setting = PaxosSetting::new(1, 3, 1);
    let spec = paxos(setting, PaxosVariant::Correct);
    let unreduced = Checker::new(&spec, consensus_property(setting)).run();
    let reduced = Checker::new(&spec, consensus_property(setting))
        .spor()
        .run();
    assert!(unreduced.verdict.is_verified());
    assert!(reduced.verdict.is_verified());
    assert!(
        reduced.stats.states <= unreduced.stats.states,
        "SPOR explored {} states, unreduced {}",
        reduced.stats.states,
        unreduced.stats.states
    );
}

#[test]
fn environment_transitions_depend_by_budget_class() {
    // The independence rule for fault injection: environment transitions of
    // the *same budget class* are dependent, even across processes — they
    // share a budget counter, so one can disable the other. Without this,
    // SPOR could postpone a fault past the point where the budget that
    // admitted it is spent. Transitions of *disjoint* classes (crash vs
    // duplication, each with its own counter) cannot interfere through the
    // budget, so across processes they are independent.
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).drops(1).dups(1),
    );
    let rel = IndependenceRelation::compute(&spec);
    let environment: Vec<_> = spec
        .transitions()
        .filter(|(_, t)| t.annotations().is_environment)
        .map(|(id, _)| id)
        .collect();
    assert!(
        environment.len() >= 6,
        "crash per process + message faults expected, got {}",
        environment.len()
    );
    let mut cross_class_independent = 0usize;
    for &a in &environment {
        for &b in &environment {
            let (ta, tb) = (spec.transition(a), spec.transition(b));
            let same_class =
                ta.annotations().environment_class == tb.annotations().environment_class;
            if same_class || ta.process() == tb.process() {
                assert!(
                    rel.dependent(a, b),
                    "environment transitions {} and {} share a budget counter or a \
                     process and must be dependent",
                    ta.name(),
                    tb.name()
                );
            } else {
                assert!(
                    rel.independent(a, b),
                    "environment transitions {} and {} draw on disjoint budgets at \
                     different processes and must be independent",
                    ta.name(),
                    tb.name()
                );
                cross_class_independent += 1;
            }
        }
    }
    assert!(
        cross_class_independent > 0,
        "the grid must contain at least one disjoint-class pair"
    );
    // And the can-enable relation knows an environment transition may
    // enable any co-located transition (duplication/corruption reinject
    // messages under the original sender).
    let sets = StubbornSets::new(&spec);
    for &e in &environment {
        let process = spec.transition(e).process();
        for co in spec.transitions_of(process) {
            if *co == e {
                continue;
            }
            assert!(
                sets.can_enable().enablers_of(*co).contains(&e),
                "{} must count as a potential enabler of {}",
                spec.transition(e).name(),
                spec.transition(*co).name()
            );
        }
    }
}

#[test]
fn fault_augmented_verdicts_agree_across_engines() {
    let setting = PaxosSetting::new(1, 2, 1);
    // Benign faults: safety holds; Byzantine corruption: validity breaks.
    let benign = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).drops(1),
    );
    verdicts_agree(
        &benign,
        || faulty_consensus_property(setting),
        NullObserver,
        false,
    );
    let byzantine = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().corruptions(2),
    );
    verdicts_agree(
        &byzantine,
        || faulty_consensus_property(setting),
        NullObserver,
        true,
    );
}

#[test]
fn spor_on_fault_augmented_models_never_explores_more_states() {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).dups(1),
    );
    let unreduced = Checker::new(&spec, faulty_consensus_property(setting)).run();
    let reduced = Checker::new(&spec, faulty_consensus_property(setting))
        .spor()
        .run();
    assert!(unreduced.verdict.is_verified());
    assert!(reduced.verdict.is_verified());
    assert!(reduced.stats.states <= unreduced.stats.states);
}

#[test]
fn dpor_stateless_agrees_on_fault_augmented_models() {
    // The stateless DPOR engine tracks environment steps through the
    // executed-step dependence; it must find the corruption bug and verify
    // the benign-budget model like the stateful engines do.
    let setting = PaxosSetting::new(1, 2, 1);
    let benign = faulty_quorum_model(setting, PaxosVariant::Correct, FaultBudget::none().drops(1));
    let report = Checker::new(&benign, faulty_consensus_property(setting))
        .config(CheckerConfig::stateless(true))
        .run();
    assert!(report.verdict.is_verified(), "{report}");

    let byzantine = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().corruptions(2),
    );
    let report = Checker::new(&byzantine, faulty_consensus_property(setting))
        .config(CheckerConfig::stateless(true))
        .run();
    assert!(report.verdict.is_violated(), "{report}");
}

#[test]
fn disjoint_class_independence_is_sound() {
    // Soundness check for the refined rule: with crash and duplication
    // budgets active at once (disjoint classes, now partially independent),
    // the reduced search must agree with the unreduced one on the verdict —
    // and, since the reduction only prunes commuting interleavings of a
    // terminating protocol, on nothing less than a verified full sweep.
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).dups(1),
    );
    let unreduced = Checker::new(&spec, faulty_consensus_property(setting)).run();
    let reduced = Checker::new(&spec, faulty_consensus_property(setting))
        .spor()
        .run();
    assert!(unreduced.verdict.is_verified(), "{unreduced}");
    assert!(reduced.verdict.is_verified(), "{reduced}");
    assert!(
        reduced.stats.states <= unreduced.stats.states,
        "SPOR explored {} states, unreduced {}",
        reduced.stats.states,
        unreduced.stats.states
    );

    // The BFS engine re-counts the same reachable set: reduced or not, no
    // state that matters is lost (state-count agreement of the full graphs
    // is checked via the unreduced engines agreeing with each other).
    let bfs = Checker::new(&spec, faulty_consensus_property(setting))
        .config(CheckerConfig::stateful_bfs())
        .run();
    assert_eq!(
        bfs.stats.states, unreduced.stats.states,
        "unreduced BFS and DFS must count the same states"
    );
}

#[test]
fn dpor_stateless_agrees_on_small_instances() {
    // Stateless search revisits states, so keep the instance tiny.
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = paxos(setting, PaxosVariant::Correct);
    let report = Checker::new(&spec, consensus_property(setting))
        .config(CheckerConfig::stateless(true))
        .run();
    assert!(report.verdict.is_verified(), "{report}");

    let broken = MulticastSetting::new(2, 1, 2, 1);
    let spec = multicast(broken);
    let report = Checker::new(&spec, agreement_property(broken))
        .config(CheckerConfig::stateless(true))
        .run();
    assert!(report.verdict.is_violated(), "{report}");
}
