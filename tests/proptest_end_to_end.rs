//! Property-based end-to-end tests: on pseudo-randomly generated instances
//! of the parametric quorum-collection protocol, (1) quorum-split
//! refinement always preserves the state graph, and (2) SPOR always agrees
//! with the unreduced search and never explores more states.
//!
//! The instances are drawn by a small deterministic PRNG instead of
//! `proptest` (this build environment is offline), so every run checks the
//! same fixed set of cases and failures reproduce exactly.

use mp_basset::checker::Checker;
use mp_basset::protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};
use mp_basset::refine::{check_refinement, SplitStrategy};

/// SplitMix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    /// A valid (voters, quorum, collectors) triple with voters in 2..5,
    /// quorum in 1..4 limited by voters, collectors in 1..3 — the ranges of
    /// the original proptest strategies.
    fn setting(&mut self) -> CollectSetting {
        loop {
            let voters = 2 + self.below(3);
            let quorum = 1 + self.below(3);
            let collectors = 1 + self.below(2);
            if quorum <= voters {
                return CollectSetting::new(voters, quorum, collectors);
            }
        }
    }
}

const CASES: usize = 16;

#[test]
fn splits_preserve_state_graph() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let setting = rng.setting();
        let base = collect_model(setting, true);
        for strategy in SplitStrategy::ALL {
            let split = strategy.apply(&base).unwrap();
            let check = check_refinement(&base, &split, 500_000).unwrap();
            assert!(
                check.equivalent,
                "{} broke the state graph for {setting:?}",
                strategy.label()
            );
        }
    }
}

#[test]
fn spor_is_sound_and_never_larger() {
    let mut rng = Rng(12);
    for _ in 0..CASES {
        let setting = rng.setting();
        for quorum_style in [true, false] {
            let spec = collect_model(setting, quorum_style);
            let unreduced = Checker::new(&spec, collect_soundness_property(setting)).run();
            let reduced = Checker::new(&spec, collect_soundness_property(setting))
                .spor()
                .run();
            assert!(unreduced.verdict.is_verified());
            assert!(reduced.verdict.is_verified());
            assert!(reduced.stats.states <= unreduced.stats.states);
        }
    }
}
