//! Property-based end-to-end tests: on randomly generated instances of the
//! parametric quorum-collection protocol, (1) quorum-split refinement always
//! preserves the state graph, and (2) SPOR always agrees with the unreduced
//! search and never explores more states.

use proptest::prelude::*;

use mp_basset::checker::Checker;
use mp_basset::protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};
use mp_basset::refine::{check_refinement, SplitStrategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quorum-split (and the combined strategy) of the collection protocol
    /// is always a transition refinement (Theorem 2).
    #[test]
    fn splits_preserve_state_graph(voters in 2usize..5, quorum in 1usize..4, collectors in 1usize..3) {
        prop_assume!(quorum <= voters);
        let setting = CollectSetting::new(voters, quorum, collectors);
        let base = collect_model(setting, true);
        for strategy in SplitStrategy::ALL {
            let split = strategy.apply(&base).unwrap();
            let check = check_refinement(&base, &split, 500_000).unwrap();
            prop_assert!(
                check.equivalent,
                "{} broke the state graph for {setting:?}",
                strategy.label()
            );
        }
    }

    /// SPOR agrees with the unreduced search on the soundness property and
    /// explores at most as many states.
    #[test]
    fn spor_is_sound_and_never_larger(voters in 2usize..5, quorum in 1usize..4, collectors in 1usize..3) {
        prop_assume!(quorum <= voters);
        let setting = CollectSetting::new(voters, quorum, collectors);
        for quorum_style in [true, false] {
            let spec = collect_model(setting, quorum_style);
            let unreduced = Checker::new(&spec, collect_soundness_property(setting)).run();
            let reduced = Checker::new(&spec, collect_soundness_property(setting)).spor().run();
            prop_assert!(unreduced.verdict.is_verified());
            prop_assert!(reduced.verdict.is_verified());
            prop_assert!(reduced.stats.states <= unreduced.stats.states);
        }
    }
}
