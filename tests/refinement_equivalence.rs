//! Integration test for Theorem 2: the refinement strategies applied to the
//! *actual evaluation protocols* generate exactly the same state graph as
//! the unsplit quorum models.

use mp_basset::protocols::echo_multicast::{quorum_model as multicast, MulticastSetting};
use mp_basset::protocols::paxos::{quorum_model as paxos, PaxosSetting, PaxosVariant};
use mp_basset::protocols::storage::{quorum_model as storage, StorageSetting};
use mp_basset::refine::{assert_refinement, check_refinement, SplitStrategy};

const MAX_STATES: usize = 400_000;

#[test]
fn paxos_splits_preserve_the_state_graph() {
    let base = paxos(PaxosSetting::new(1, 3, 1), PaxosVariant::Correct);
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        assert_refinement(&base, &split, MAX_STATES);
    }
}

#[test]
fn faulty_paxos_splits_preserve_the_state_graph() {
    let base = paxos(PaxosSetting::new(2, 2, 1), PaxosVariant::FaultyLearner);
    let split = SplitStrategy::CombinedSplit.apply(&base).unwrap();
    assert_refinement(&base, &split, MAX_STATES);
}

#[test]
fn multicast_splits_preserve_the_state_graph() {
    let base = multicast(MulticastSetting::new(2, 1, 0, 1));
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        assert_refinement(&base, &split, MAX_STATES);
    }
}

#[test]
fn multicast_with_byzantine_receivers_splits_preserve_the_state_graph() {
    let base = multicast(MulticastSetting::new(2, 0, 1, 1));
    let split = SplitStrategy::CombinedSplit.apply(&base).unwrap();
    assert_refinement(&base, &split, MAX_STATES);
}

#[test]
fn storage_splits_preserve_the_state_graph() {
    let base = storage(StorageSetting::new(3, 1));
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        assert_refinement(&base, &split, MAX_STATES);
    }
}

#[test]
fn split_models_report_identical_sizes() {
    let base = storage(StorageSetting::new(2, 1));
    let split = SplitStrategy::CombinedSplit.apply(&base).unwrap();
    let check = check_refinement(&base, &split, MAX_STATES).unwrap();
    assert!(check.equivalent);
    assert_eq!(check.original_states, check.refined_states);
    assert_eq!(check.original_edges, check.refined_edges);
}
