//! Integration test for the `mp-store` subsystem: every visited-store
//! backend must return the identical verdict (and, at these state counts,
//! identical state counts) on the tier-1 evaluation models, across the
//! stateful engines; and hash compaction must measurably shrink the store
//! on a quorum-scaling configuration.

use mp_basset::checker::{Checker, CheckerConfig, StoreConfig};
use mp_basset::harness::scaling::store_backend_sweep;
use mp_basset::harness::Budget;
use mp_basset::protocols::echo_multicast::{
    agreement_property, quorum_model as multicast, MulticastSetting,
};
use mp_basset::protocols::paxos::{
    consensus_property, quorum_model as paxos, PaxosSetting, PaxosVariant,
};
use mp_basset::protocols::sweep::CollectSetting;

const BACKENDS: [StoreConfig; 3] = [
    StoreConfig::Exact,
    StoreConfig::Sharded { shards: 64 },
    StoreConfig::Fingerprint {
        bits: 48,
        shards: 1,
    },
];

fn engines() -> [CheckerConfig; 3] {
    [
        CheckerConfig::stateful_dfs(),
        CheckerConfig::stateful_bfs(),
        CheckerConfig::parallel_bfs(2),
    ]
}

#[test]
fn all_backends_verify_correct_paxos_identically() {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = paxos(setting, PaxosVariant::Correct);
    for engine in engines() {
        let mut states = None;
        for store in BACKENDS {
            let report = Checker::new(&spec, consensus_property(setting))
                .spor()
                .config(engine.clone().with_store(store))
                .run();
            assert!(
                report.verdict.is_verified(),
                "paxos must verify under {} with {store}",
                report.strategy
            );
            let expected = *states.get_or_insert(report.stats.states);
            assert_eq!(
                report.stats.states, expected,
                "state count differs under {} with {store}",
                report.strategy
            );
        }
    }
}

#[test]
fn all_backends_find_the_paxos_bug() {
    let setting = PaxosSetting::new(2, 3, 1);
    let spec = paxos(setting, PaxosVariant::FaultyLearner);
    for engine in engines() {
        for store in BACKENDS {
            let report = Checker::new(&spec, consensus_property(setting))
                .spor()
                .config(engine.clone().with_store(store))
                .run();
            assert!(
                report.verdict.is_violated(),
                "the injected bug must be found under {} with {store}",
                report.strategy
            );
        }
    }
}

#[test]
fn all_backends_agree_on_echo_multicast() {
    // A correct setting (verified) and the wrong-agreement setting
    // (violated), both from the paper's evaluation.
    for (setting, expect_violation) in [
        (MulticastSetting::new(3, 0, 1, 1), false),
        (MulticastSetting::new(2, 1, 2, 1), true),
    ] {
        let spec = multicast(setting);
        for engine in engines() {
            for store in BACKENDS {
                let report = Checker::new(&spec, agreement_property(setting))
                    .spor()
                    .config(engine.clone().with_store(store))
                    .run();
                assert_eq!(
                    report.verdict.is_violated(),
                    expect_violation,
                    "multicast{setting} under {} with {store}",
                    report.strategy
                );
            }
        }
    }
}

#[test]
fn fingerprints_shrink_the_store_on_the_quorum_scaling_run() {
    // The acceptance configuration: a quorum-scaling sweep point verified
    // with every backend; the fingerprint store must complete it with the
    // same verdict and measurably lower peak state-storage bytes.
    let points = store_backend_sweep(CollectSetting::new(4, 2, 1), false, &Budget::small());
    let exact = &points[0];
    let fingerprint = &points[2];
    assert_eq!(exact.backend, "exact");
    assert_eq!(fingerprint.backend, "fingerprint(48-bit)");
    assert_eq!(exact.verdict, fingerprint.verdict);
    assert_eq!(exact.states, fingerprint.states);
    assert!(
        fingerprint.store_bytes * 2 < exact.store_bytes,
        "fingerprint store ({} B) must be well under the exact store ({} B)",
        fingerprint.store_bytes,
        exact.store_bytes
    );
}
