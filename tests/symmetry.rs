//! Integration tests for the process-symmetry (orbit) reduction
//! (`mp-symmetry`) across the evaluation protocols, the fault layer, the
//! property classes, the reduction strategies and the store backends:
//!
//! * the validated groups have the expected orders (and the deliberately
//!   asymmetric Paxos variant — acceptors seeded with distinct accepted
//!   values — degenerates to identity),
//! * symmetry-on and symmetry-off agree on **every** safety and liveness
//!   verdict across the fault-budget grid, with SPOR on and off and with
//!   every store backend, while symmetry-on explores at most as many (and
//!   on the Paxos/storage crash cells strictly fewer) states,
//! * every engine agrees under symmetry, and
//! * lasso counterexamples found modulo symmetry still replay concretely.

use mp_basset::checker::{Checker, CheckerConfig, Counterexample, NullObserver, Observer};
use mp_basset::faults::FaultBudget;
use mp_basset::model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, Permutable, ProtocolSpec,
};
use mp_basset::protocols::echo_multicast::{
    self, faulty_agreement_property, faulty_delivery_termination_property,
    faulty_quorum_model as faulty_multicast, MulticastSetting,
};
use mp_basset::protocols::paxos::{
    self, faulty_consensus_property, faulty_quorum_model as faulty_paxos,
    faulty_termination_property, quorum_model_with_acceptor_values, PaxosSetting, PaxosVariant,
};
use mp_basset::protocols::storage::{
    self, faulty_quorum_model as faulty_storage, faulty_read_completion_property,
    faulty_regularity_observer, faulty_regularity_property, StorageSetting,
};
use mp_basset::store::StoreConfig;
use mp_basset::symmetry::{RoleMap, SymmetryGroup};

fn paxos_setting() -> PaxosSetting {
    PaxosSetting::new(1, 2, 1)
}

fn multicast_setting() -> MulticastSetting {
    MulticastSetting::new(2, 1, 0, 1)
}

fn storage_setting() -> StorageSetting {
    StorageSetting::new(2, 1)
}

fn budgets() -> [(&'static str, FaultBudget); 3] {
    [
        ("none", FaultBudget::none()),
        ("crash1", FaultBudget::none().crashes(1)),
        ("drop1", FaultBudget::none().drops(1)),
    ]
}

// ---------------------------------------------------------------------------
// (a) Validated group orders.
// ---------------------------------------------------------------------------

#[test]
fn validated_groups_have_expected_orders() {
    // Paxos (1,2,1): 2 interchangeable acceptors, 1 learner -> order 2.
    let spec = faulty_paxos(
        paxos_setting(),
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );
    let group = SymmetryGroup::build(&spec, &paxos::symmetry_roles(paxos_setting()));
    assert_eq!(group.order(), 2, "two acceptors swap");

    // Regular storage (2,1): 2 interchangeable base objects -> order 2.
    let spec = faulty_storage(storage_setting(), FaultBudget::none().crashes(1));
    let group = SymmetryGroup::build(&spec, &storage::symmetry_roles(storage_setting()));
    assert_eq!(group.order(), 2, "two base objects swap");

    // Echo multicast (2,1,0,1): the equivocation attack splits the two
    // honest receivers into different attack groups, so the declared role
    // degenerates — the correct answer, not a missed optimisation.
    let spec = faulty_multicast(multicast_setting(), FaultBudget::none());
    let group = SymmetryGroup::build(&spec, &echo_multicast::symmetry_roles(multicast_setting()));
    assert!(group.is_trivial(), "attack groups break receiver symmetry");

    // The wrong-agreement setting (2,1,2,1) has two interchangeable
    // *Byzantine* receivers: they cooperate with both halves of the attack.
    let setting = MulticastSetting::new(2, 1, 2, 1);
    let spec = mp_basset::protocols::echo_multicast::quorum_model(setting);
    let group = SymmetryGroup::build(&spec, &echo_multicast::symmetry_roles(setting));
    assert_eq!(group.order(), 2, "Byzantine receivers swap");
}

#[test]
fn asymmetric_acceptor_values_degenerate_to_identity() {
    let setting = paxos_setting();
    let roles = paxos::symmetry_roles(setting);

    // Equal seeds: the swap is still a symmetry.
    let symmetric =
        quorum_model_with_acceptor_values(setting, PaxosVariant::Correct, &[None, None]);
    assert_eq!(SymmetryGroup::build(&symmetric, &roles).order(), 2);

    // Distinct seeds: acceptor 0 has accepted (1, 1), acceptor 1 nothing —
    // the initial state is no longer a fixed point of the swap, so the
    // group must collapse to the identity.
    let asymmetric =
        quorum_model_with_acceptor_values(setting, PaxosVariant::Correct, &[Some((1, 1)), None]);
    let group = SymmetryGroup::build(&asymmetric, &roles);
    assert!(
        group.is_trivial(),
        "distinct acceptor initial values must reject the swap"
    );

    // And the degenerate reduction is a no-op: identical verdict and state
    // count with symmetry nominally on.
    let off = Checker::new(
        &asymmetric,
        mp_basset::protocols::paxos::consensus_property(setting),
    )
    .run();
    let on = Checker::new(
        &asymmetric,
        mp_basset::protocols::paxos::consensus_property(setting),
    )
    .with_role_symmetry(&roles)
    .run();
    assert_eq!(off.verdict.is_violated(), on.verdict.is_violated());
    assert_eq!(off.stats.states, on.stats.states, "identity group = no-op");
}

// ---------------------------------------------------------------------------
// (b) Symmetry-on/off verdict agreement across the whole matrix.
// ---------------------------------------------------------------------------

/// Runs safety + liveness with and without symmetry under one strategy and
/// backend; asserts verdict agreement and returns (states_off, states_on)
/// of the safety run.
#[allow(clippy::too_many_arguments)]
fn agree_cell<S, M, O>(
    label: &str,
    spec: &ProtocolSpec<S, M>,
    roles: &RoleMap,
    safety: mp_basset::checker::Invariant<S, M, O>,
    liveness: &mp_basset::checker::Property<S, M, NullObserver>,
    observer: O,
    spor: bool,
    store: StoreConfig,
) -> (usize, usize)
where
    S: LocalState + Permutable,
    M: Message + Permutable,
    O: Observer<S, M> + Permutable + Ord,
{
    let config = CheckerConfig::stateful_dfs().with_store(store);
    let liveness_run = |symmetry: bool| {
        let checker =
            Checker::with_observer(spec, liveness.clone(), NullObserver).config(config.clone());
        let checker = if spor { checker.spor() } else { checker };
        if symmetry {
            checker.with_role_symmetry(roles).run()
        } else {
            checker.run()
        }
    };

    // Safety.
    let safety_run = |symmetry: bool| {
        let checker =
            Checker::with_observer(spec, safety.clone(), observer.clone()).config(config.clone());
        let checker = if spor { checker.spor() } else { checker };
        if symmetry {
            checker.with_role_symmetry(roles).run()
        } else {
            checker.run()
        }
    };
    let safety_off = safety_run(false);
    let safety_on = safety_run(true);
    assert_eq!(
        safety_off.verdict.is_violated(),
        safety_on.verdict.is_violated(),
        "{label}: safety verdicts disagree ({} vs {})",
        safety_off.verdict,
        safety_on.verdict
    );
    assert!(
        safety_on.stats.states <= safety_off.stats.states,
        "{label}: symmetry must not grow the explored set ({} vs {})",
        safety_on.stats.states,
        safety_off.stats.states
    );

    // Liveness.
    let liveness_off = liveness_run(false);
    let liveness_on = liveness_run(true);
    assert_eq!(
        liveness_off.verdict.is_violated(),
        liveness_on.verdict.is_violated(),
        "{label}: liveness verdicts disagree ({} vs {})",
        liveness_off.verdict,
        liveness_on.verdict
    );

    (safety_off.stats.states, safety_on.stats.states)
}

#[test]
fn symmetry_on_and_off_agree_on_every_verdict() {
    let stores = [
        StoreConfig::Exact,
        StoreConfig::sharded(),
        StoreConfig::fingerprint(48),
    ];
    let mut paxos_crash_collapsed = false;
    for (budget_label, budget) in budgets() {
        for spor in [false, true] {
            for store in stores {
                let label =
                    |proto: &str| format!("{proto}/{budget_label}/spor={spor}/store={store}");

                let setting = paxos_setting();
                let spec = faulty_paxos(setting, PaxosVariant::Correct, budget);
                let (off, on) = agree_cell(
                    &label("paxos"),
                    &spec,
                    &paxos::symmetry_roles(setting),
                    faulty_consensus_property(setting),
                    &faulty_termination_property(setting),
                    NullObserver,
                    spor,
                    store,
                );
                if budget_label == "crash1" {
                    assert!(
                        on < off,
                        "paxos crash cells must collapse orbits ({on} vs {off})"
                    );
                    paxos_crash_collapsed = true;
                }

                let setting = multicast_setting();
                let spec = faulty_multicast(setting, budget);
                agree_cell(
                    &label("multicast"),
                    &spec,
                    &echo_multicast::symmetry_roles(setting),
                    faulty_agreement_property(setting),
                    &faulty_delivery_termination_property(setting),
                    NullObserver,
                    spor,
                    store,
                );

                let setting = storage_setting();
                let spec = faulty_storage(setting, budget);
                agree_cell(
                    &label("storage"),
                    &spec,
                    &storage::symmetry_roles(setting),
                    faulty_regularity_property(setting),
                    &faulty_read_completion_property(setting),
                    faulty_regularity_observer(setting),
                    spor,
                    store,
                );
            }
        }
    }
    assert!(paxos_crash_collapsed);
}

// ---------------------------------------------------------------------------
// (c) Every engine agrees under symmetry.
// ---------------------------------------------------------------------------

#[test]
fn every_engine_agrees_under_symmetry() {
    let setting = paxos_setting();
    let roles = paxos::symmetry_roles(setting);
    for (budget, expect_violation) in [
        (FaultBudget::none(), false),
        (FaultBudget::none().crashes(1), true),
    ] {
        let spec = faulty_paxos(setting, PaxosVariant::Correct, budget);
        for config in [
            CheckerConfig::stateful_dfs(),
            CheckerConfig::stateful_bfs(),
            CheckerConfig::parallel_bfs(2),
            CheckerConfig::stateless(false),
            CheckerConfig::stateless(true),
        ] {
            let report = Checker::new(&spec, faulty_termination_property(setting))
                .with_role_symmetry(&roles)
                .config(config.clone())
                .run();
            assert_eq!(
                report.verdict.is_violated(),
                expect_violation,
                "strategy {:?} with symmetry disagrees on budget {budget}: {report}",
                config.strategy
            );
            // Safety too.
            let report = Checker::new(&spec, faulty_consensus_property(setting))
                .with_role_symmetry(&roles)
                .config(config.clone())
                .run();
            assert!(
                report.verdict.is_verified(),
                "strategy {:?} with symmetry broke consensus: {report}",
                config.strategy
            );
        }
    }
}

// ---------------------------------------------------------------------------
// (d) Counterexamples stay concrete and replayable.
// ---------------------------------------------------------------------------

/// Replays a counterexample by matching names/processes/senders against the
/// enabled instances (same helper as tests/liveness.rs).
fn replay<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    cx: &Counterexample,
) -> (GlobalState<S, M>, GlobalState<S, M>) {
    let step = |state: &GlobalState<S, M>,
                step: &mp_basset::checker::CounterexampleStep|
     -> GlobalState<S, M> {
        let matching: Vec<_> = enabled_instances(spec, state)
            .into_iter()
            .filter(|i| {
                spec.transition(i.transition).name() == step.transition
                    && i.process == step.process
                    && i.senders() == step.consumed_from
            })
            .collect();
        assert!(
            !matching.is_empty(),
            "step `{step}` has no matching enabled instance during replay"
        );
        execute_enabled(spec, state, &matching[0])
    };
    let mut state = spec.initial_state();
    for s in &cx.steps {
        state = step(&state, s);
    }
    let entry = state.clone();
    for s in &cx.cycle {
        state = step(&state, s);
    }
    (entry, state)
}

#[test]
fn symmetric_lassos_replay_concretely() {
    // Paxos (1,2,1) + crash budget 1: the lasso's crash targets a concrete
    // acceptor even though only one crash orbit was explored.
    let setting = paxos_setting();
    let spec = faulty_paxos(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1),
    );
    let report = Checker::new(&spec, faulty_termination_property(setting))
        .with_role_symmetry(&paxos::symmetry_roles(setting))
        .run();
    let cx = report
        .verdict
        .counterexample()
        .expect("crash budget 1 breaks termination");
    assert!(cx.is_lasso);
    assert!(
        cx.steps
            .iter()
            .any(|s| s.transition.starts_with("FAULT_CRASH")),
        "the stem names a concrete crash victim: {cx}"
    );
    let (entry, after_cycle) = replay(&spec, cx);
    if cx.cycle.is_empty() {
        assert!(
            enabled_instances(&spec, &entry).is_empty(),
            "a quiescent lasso ends with nothing enabled"
        );
    } else {
        assert_eq!(entry, after_cycle, "one cycle unrolling returns to entry");
    }

    // Storage under loss: same check on the second protocol family.
    let setting = storage_setting();
    let lossy = faulty_storage(setting, FaultBudget::none().drops(1));
    let report = Checker::new(&lossy, faulty_read_completion_property(setting))
        .with_role_symmetry(&storage::symmetry_roles(setting))
        .run();
    let cx = report
        .verdict
        .counterexample()
        .expect("loss blocks the read");
    let (entry, after_cycle) = replay(&lossy, cx);
    if cx.cycle.is_empty() {
        assert!(enabled_instances(&lossy, &entry).is_empty());
    } else {
        assert_eq!(entry, after_cycle);
    }
}

// ---------------------------------------------------------------------------
// (e) A cyclic model where the lasso closes modulo a non-identity
//     permutation: the reported cycle must be the unrolled concrete one.
// ---------------------------------------------------------------------------

#[test]
fn non_identity_cycle_closures_unroll_to_concrete_lassos() {
    use mp_basset::checker::Property;
    use mp_basset::model::{Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);
    impl Message for Tok {
        fn kind(&self) -> &'static str {
            "TOK"
        }
    }
    impl Permutable for Tok {
        fn permute(&self, _perm: &mp_basset::model::Permutation) -> Self {
            Tok
        }
    }

    // A symmetric toggler pair: both processes flip a bit forever. The
    // concrete graph is the 4-cycle square over {0,1}²; the orbit {[0,1],
    // [1,0]} means the DFS closes cycles *modulo the swap* (e.g. reaching
    // [0,1] while [1,0] is on the stack), so a reported lasso must be the
    // δ-unrolled concrete cycle, not the quotient segment.
    let togglers: ProtocolSpec<u8, Tok> = ProtocolSpec::builder("togglers")
        .process("a", 0u8)
        .process("b", 0u8)
        .transition(
            TransitionSpec::builder("flip0", ProcessId(0))
                .internal()
                .sends_nothing()
                .effect(|l, _| Outcome::new(1 - *l))
                .build(),
        )
        .transition(
            TransitionSpec::builder("flip1", ProcessId(1))
                .internal()
                .sends_nothing()
                .effect(|l, _| Outcome::new(1 - *l))
                .build(),
        )
        .build()
        .unwrap();
    let roles = RoleMap::new(2).role([ProcessId(0), ProcessId(1)]);
    assert_eq!(SymmetryGroup::build(&togglers, &roles).order(), 2);

    // "some local reaches 2" never holds, and a fair cycle exists (the full
    // square executes both flips), so termination is violated either way.
    let never = Property::termination("reaches-2", |s: &GlobalState<u8, Tok>, _: &NullObserver| {
        s.locals.contains(&2)
    });
    let off = Checker::new(&togglers, never.clone()).run();
    let on = Checker::new(&togglers, never)
        .with_role_symmetry(&roles)
        .run();
    assert!(off.verdict.is_violated(), "{off}");
    assert!(on.verdict.is_violated(), "{on}");

    // The symmetric run's lasso replays concretely: the cycle returns
    // exactly to its entry state and starves no required transition.
    let cx = on.verdict.counterexample().unwrap();
    assert!(cx.is_lasso);
    assert!(!cx.cycle.is_empty(), "the togglers never quiesce: {cx}");
    let (entry, after_cycle) = replay(&togglers, cx);
    assert_eq!(entry, after_cycle, "the unrolled cycle closes exactly");
    assert!(
        cx.cycle.iter().any(|s| s.transition == "flip0")
            && cx.cycle.iter().any(|s| s.transition == "flip1"),
        "a weakly-fair cycle must execute both togglers: {cx}"
    );
}
