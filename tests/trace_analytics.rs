//! Integration tests for the trace analytics layer (`mp_trace::analyze`)
//! over traces emitted by the real engines: the summary fold must agree
//! with the engine's own counters, a trace diffed against itself must be
//! all-zero, the folded-stack flame export must be well-formed, and the
//! per-level `level_summary` time-series must tile the search exactly —
//! level widths summing to the total number of stored states.

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::protocols::paxos::{
    consensus_property, quorum_model as paxos, PaxosSetting, PaxosVariant,
};
use mp_basset::trace::analyze::{analyze_stream, diff, RunSummary};
use mp_basset::trace::{SharedBuffer, Tracer};

/// Runs correct Paxos under `config` with a capturing tracer, returning
/// the engine report and the analyzed run summary.
fn traced_paxos(config: CheckerConfig) -> (mp_basset::checker::RunReport, RunSummary) {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = paxos(setting, PaxosVariant::Correct);
    let buf = SharedBuffer::new();
    let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
    let report = Checker::new(&spec, consensus_property(setting))
        .spor()
        .config(config.with_trace(tracer))
        .run();
    let ndjson = buf.contents();
    let mut runs = analyze_stream(ndjson.lines())
        .unwrap_or_else(|e| panic!("analyzer rejected an engine trace: {e}\n{ndjson}"));
    assert_eq!(runs.len(), 1, "exactly one traced run");
    (report, runs.remove(0))
}

#[test]
fn summaries_agree_with_the_engines_own_counters() {
    for config in [
        CheckerConfig::stateful_bfs(),
        CheckerConfig::stateful_dfs(),
        CheckerConfig::parallel_bfs(2),
    ] {
        let label = config.strategy.to_string();
        let (report, summary) = traced_paxos(config);
        assert!(report.verdict.is_verified(), "{label}");
        assert!(summary.clean, "{label}");
        assert_eq!(summary.verdict, "verified", "{label}");
        assert_eq!(summary.states, report.stats.states as u64, "{label}");
        assert_eq!(
            summary.transitions, report.stats.transitions_executed as u64,
            "{label}"
        );
        assert!(
            summary.phase_total_us() > 0,
            "{label}: traced run must accumulate phase time"
        );
        assert!(summary.throughput.samples >= 1, "{label}");
    }
}

#[test]
fn self_diff_of_an_engine_trace_is_all_zero() {
    let (_, summary) = traced_paxos(CheckerConfig::stateful_bfs());
    let d = diff(&summary, &summary);
    assert!(d.is_zero(), "self-diff must be zero: {d:?}");
    assert_eq!(d.throughput_ratio, 1.0);
}

#[test]
fn flame_export_is_folded_stack_shaped() {
    let (_, summary) = traced_paxos(CheckerConfig::stateful_bfs());
    let stacks = summary.folded_stacks();
    assert!(!stacks.is_empty());
    for line in &stacks {
        // Collapsed-stack format: `frame;frame <count>` with an integer
        // count — what speedscope/inferno ingest directly.
        let (frames, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no count separator: {line}"));
        assert!(
            frames.starts_with(&summary.strategy),
            "root frame must be the engine: {line}"
        );
        assert!(frames.contains(';'), "{line}");
        count
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("non-integer count in `{line}`: {e}"));
    }
}

#[test]
fn bfs_level_widths_tile_the_search_exactly() {
    // Every stored state is queued once and popped in exactly one level, so
    // on a run-to-exhaustion BFS the level widths must sum to the total
    // state count — the time-series tiles the search with no gap and no
    // double count. Checked for both BFS engines, with and without spill.
    for (label, config) in [
        ("stateful-bfs", CheckerConfig::stateful_bfs()),
        (
            "stateful-bfs+spill",
            CheckerConfig::stateful_bfs()
                .with_frontier(mp_basset::store::FrontierConfig::disk_with_watermark(256)),
        ),
        ("parallel-bfs", CheckerConfig::parallel_bfs(2)),
    ] {
        let (report, summary) = traced_paxos(config);
        assert!(report.verdict.is_verified(), "{label}");
        assert!(!summary.levels.is_empty(), "{label}: BFS must emit levels");
        let width_sum: u64 = summary.levels.iter().map(|l| l.width).sum();
        assert_eq!(
            width_sum, summary.states,
            "{label}: level widths must sum to the state count"
        );
        // new_states tiles the successors the same way: everything except
        // the pre-seeded root is first stored during some level.
        let new_sum: u64 = summary.levels.iter().map(|l| l.new_states).sum();
        assert_eq!(new_sum, summary.states - 1, "{label}");
        // Levels arrive in order, starting at depth 1.
        for (i, level) in summary.levels.iter().enumerate() {
            assert_eq!(level.level, i as u64 + 1, "{label}: contiguous levels");
        }
        assert_eq!(
            summary.levels.len() as u64,
            summary.peak_depth,
            "{label}: one level_summary per depth"
        );
    }
}

#[test]
fn memory_gauges_reach_the_stream_with_plausible_values() {
    let (report, summary) = traced_paxos(CheckerConfig::stateful_bfs());
    use mp_basset::trace::Gauge;
    let store_peak = summary.gauge(Gauge::StoreBytes);
    assert!(store_peak > 0, "traced BFS must sample the store gauge");
    assert_eq!(
        store_peak, report.stats.store_bytes as u64,
        "peak store gauge equals the final store footprint (grow-only)"
    );
    assert!(summary.gauge(Gauge::FrontierBytes) > 0);
    // Symmetry off: the canonical-cache gauge must stay zero.
    assert_eq!(summary.gauge(Gauge::CanonicalCacheBytes), 0);
}
