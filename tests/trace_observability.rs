//! Integration tests for the `mp-trace` observability subsystem as wired
//! through the real engines: the parallel-BFS worker threads must
//! contribute to the shared atomic counters so that their sum equals the
//! sequential totals exactly, and a traced engine run must emit an NDJSON
//! stream that passes the schema/ordering validator (`trace_check`'s
//! library core).

use mp_basset::checker::{Checker, CheckerConfig};
use mp_basset::protocols::paxos::{
    consensus_property, quorum_model as paxos, PaxosSetting, PaxosVariant,
};
use mp_basset::trace::validate::{parse_flat_object, validate_stream, Value};
use mp_basset::trace::{SharedBuffer, Tracer};

/// Runs correct Paxos under `config`, returning the report. With `trace`
/// installed the engine emits NDJSON into the caller's buffer.
fn run_paxos(config: CheckerConfig, trace: Tracer) -> mp_basset::checker::RunReport {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = paxos(setting, PaxosVariant::Correct);
    Checker::new(&spec, consensus_property(setting))
        .spor()
        .config(config.with_trace(trace))
        .run()
}

/// The integer value of `field` in the stream's last event of kind
/// `event` (the verdict event, for the fields this test reads).
fn last_event_int(ndjson: &str, event: &str, field: &str) -> u64 {
    let line = ndjson
        .lines()
        .rfind(|l| {
            parse_flat_object(l)
                .map(|f| f.get("event") == Some(&Value::Str(event.to_string())))
                .unwrap_or(false)
        })
        .unwrap_or_else(|| panic!("no {event} event in the stream:\n{ndjson}"));
    match parse_flat_object(line)
        .expect("verdict line parses")
        .get(field)
    {
        Some(Value::Int(n)) => *n,
        other => panic!("field {field} of {event} is {other:?}"),
    }
}

#[test]
fn parallel_bfs_thread_contributions_sum_to_the_sequential_totals() {
    // Sequential baseline: deterministic counters and untraced run.
    let sequential = run_paxos(CheckerConfig::stateful_bfs(), Tracer::disabled());
    assert!(sequential.verdict.is_verified());

    for threads in [2, 4] {
        // The parallel engine's workers all increment the same atomic
        // trace counters; the verdict event carries their sum.
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let parallel = run_paxos(CheckerConfig::parallel_bfs(threads), tracer);
        assert!(parallel.verdict.is_verified());

        // Engine-level determinism: the counters view (timing excluded)
        // must agree exactly with the sequential search.
        assert_eq!(
            parallel.stats.counters(),
            sequential.stats.counters(),
            "parallel-bfs({threads}) diverged from sequential BFS"
        );

        // Trace-level exactness: the atomics the worker threads shared
        // must sum to the same totals the engines report.
        let ndjson = buf.contents();
        assert_eq!(
            last_event_int(&ndjson, "verdict", "states"),
            sequential.stats.states as u64,
            "traced state counter under parallel-bfs({threads})"
        );
        assert_eq!(
            last_event_int(&ndjson, "verdict", "transitions"),
            sequential.stats.transitions_executed as u64,
            "traced transition counter under parallel-bfs({threads})"
        );
    }
}

#[test]
fn traced_engine_runs_emit_schema_valid_ndjson() {
    for config in [
        CheckerConfig::stateful_bfs(),
        CheckerConfig::stateful_dfs(),
        CheckerConfig::parallel_bfs(2),
        CheckerConfig::stateless(true),
    ] {
        let label = config.strategy.to_string();
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let report = run_paxos(config, tracer);
        assert!(report.verdict.is_verified(), "{label}");

        let ndjson = buf.contents();
        let summary = validate_stream(ndjson.lines())
            .unwrap_or_else(|e| panic!("{label}: invalid trace: {e}\n{ndjson}"));
        assert_eq!(summary.runs, 1, "{label}: exactly one traced run");
        assert_eq!(summary.clean_runs, 1, "{label}: the run must end cleanly");
        assert_eq!(summary.aborted_runs, 0, "{label}");
        assert_eq!(
            last_event_int(&ndjson, "verdict", "states"),
            report.stats.states as u64,
            "{label}: verdict event must carry the engine's state count"
        );
    }
}

#[test]
fn tracing_does_not_change_the_search() {
    // The acceptance criterion: with tracing enabled the verdict and every
    // deterministic counter are identical to the untraced run.
    let untraced = run_paxos(CheckerConfig::stateful_bfs(), Tracer::disabled());
    let buf = SharedBuffer::new();
    let traced = run_paxos(
        CheckerConfig::stateful_bfs(),
        Tracer::to_writer(false, Box::new(buf.clone())),
    );
    assert_eq!(untraced.verdict.is_verified(), traced.verdict.is_verified());
    assert_eq!(untraced.stats.counters(), traced.stats.counters());
    // The traced run additionally accumulated a phase breakdown; the
    // untraced run must not have paid for one.
    assert!(untraced.stats.phases.is_zero());
    assert!(!buf.contents().is_empty());
}
